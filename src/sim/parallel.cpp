#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <thread>

#include "common/check.hpp"

namespace pd::sim {

namespace {

thread_local std::size_t tl_shard = ParallelSim::kNoShard;

TimePoint sat_add(TimePoint t, Duration d) {
  if (t >= Scheduler::kNoEvent - d) return Scheduler::kNoEvent;
  return t + d;
}

}  // namespace

ParallelSim::ParallelSim(std::size_t shards, unsigned os_threads) {
  PD_CHECK(shards > 0, "parallel sim needs at least one shard");
  shards_.resize(shards);
  for (Shard& s : shards_) {
    s.sched = std::make_unique<Scheduler>();
    s.inbox.reserve(shards);
    for (std::size_t src = 0; src < shards; ++src) {
      s.inbox.push_back(std::make_unique<Mailbox>());
    }
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned want = os_threads == 0 ? hw : os_threads;
  threads_ = std::max(1u, std::min<unsigned>(
                              want, static_cast<unsigned>(shards)));
}

ParallelSim::~ParallelSim() = default;

void ParallelSim::set_lookahead(Duration l) {
  PD_CHECK(l >= 1, "lookahead must be at least 1 ns");
  PD_CHECK(!running_, "lookahead change mid-run");
  lookahead_ = l;
}

void ParallelSim::set_shard_hooks(ShardHook enter, ShardHook leave) {
  enter_shard_ = std::move(enter);
  leave_shard_ = std::move(leave);
}

std::size_t ParallelSim::current_shard() { return tl_shard; }

void ParallelSim::post(std::size_t dst, TimePoint t, EventFn fn,
                       bool foreground) {
  PD_CHECK(dst < shards_.size(), "post to unknown shard " << dst);
  const std::size_t src = tl_shard;
  if (!running_ || src == dst) {
    // Setup phase (single-threaded, nothing running) or a post back to the
    // executing shard itself: an ordinary local event.
    Scheduler& sched = *shards_[dst].sched;
    if (foreground) {
      sched.schedule_at(t, std::move(fn));
    } else {
      sched.schedule_background_at(t, std::move(fn));
    }
    return;
  }
  PD_CHECK(src != kNoShard, "cross-shard post from outside a shard phase");
  PD_CHECK(t >= epoch_floor_ + lookahead_,
           "cross-shard post at t=" << t << " violates lookahead (epoch="
                                    << epoch_floor_ << " L=" << lookahead_
                                    << ")");
  if (foreground) in_flight_fg_.fetch_add(1, std::memory_order_relaxed);
  Mailbox& mb = *shards_[dst].inbox[src];
  CrossEvent e{t, foreground, std::move(fn)};
  if (!mb.spilling && !mb.ring.full()) {
    const bool ok = mb.ring.try_push(std::move(e));
    PD_CHECK(ok, "SPSC mailbox push raced its own producer");
    return;
  }
  std::lock_guard<std::mutex> lock(mb.mu);
  mb.spilling = true;
  mb.spill.push_back(std::move(e));
}

void ParallelSim::drain(std::size_t k) {
  Shard& s = shards_[k];
  Scheduler& sched = *s.sched;
  auto deliver = [&](CrossEvent&& e) {
    if (e.foreground) {
      sched.schedule_at(e.t, std::move(e.fn));
      in_flight_fg_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      sched.schedule_background_at(e.t, std::move(e.fn));
    }
  };
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    Mailbox& mb = *s.inbox[src];
    while (auto e = mb.ring.try_pop()) deliver(std::move(*e));
    if (mb.spilling) {
      std::lock_guard<std::mutex> lock(mb.mu);
      for (CrossEvent& e : mb.spill) deliver(std::move(e));
      mb.spill.clear();
      mb.spilling = false;
    }
  }
  s.next = sched.next_event_time();
}

bool ParallelSim::plan(TimePoint deadline, bool until_mode) {
  ++epochs_;
  TimePoint min1 = Scheduler::kNoEvent;
  TimePoint min2 = Scheduler::kNoEvent;
  std::size_t owner = kNoShard;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const TimePoint next = shards_[k].next;
    if (next < min1) {
      min2 = min1;
      min1 = next;
      owner = k;
    } else if (next < min2) {
      min2 = next;
    }
  }
  if (until_mode) {
    if (min1 > deadline) return true;  // every remaining event is later
  } else {
    std::uint64_t fg = in_flight_fg_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) fg += s.sched->foreground_live();
    if (fg == 0 || min1 == Scheduler::kNoEvent) return true;
  }
  epoch_floor_ = min1;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& s = shards_[k];
    // Influence from another shard cannot land before (their earliest
    // event) + L; influence reflected off our own earliest post needs 2L.
    const TimePoint other = k == owner ? min2 : min1;
    const TimePoint base = std::min(other, sat_add(s.next, lookahead_));
    TimePoint h = sat_add(base, lookahead_);
    if (until_mode) h = std::min(h, deadline + 1);
    s.horizon = h;
  }
  return false;
}

void ParallelSim::execute(std::size_t k) {
  tl_shard = k;
  if (enter_shard_) enter_shard_(k);
  shards_[k].sched->run_window(shards_[k].horizon);
  if (leave_shard_) leave_shard_(k);
  tl_shard = kNoShard;
}

void ParallelSim::drive_serial(TimePoint deadline, bool until_mode) {
  for (;;) {
    for (std::size_t k = 0; k < shards_.size(); ++k) drain(k);
    if (plan(deadline, until_mode)) return;
    for (std::size_t k = 0; k < shards_.size(); ++k) execute(k);
  }
}

void ParallelSim::drive_threaded(TimePoint deadline, bool until_mode) {
  struct Sync {
    int phase = 0;
    bool stop = false;
  };
  Sync sync;
  // Completion runs exactly once per barrier cycle, after every thread
  // arrives and before any is released — the serial plan slice.
  std::barrier bar(static_cast<std::ptrdiff_t>(threads_),
                   [this, &sync, deadline, until_mode]() noexcept {
                     if (sync.phase == 0) {
                       sync.stop = plan(deadline, until_mode);
                     }
                     sync.phase ^= 1;
                   });
  auto worker = [this, &sync, &bar](unsigned ti) {
    for (;;) {
      for (std::size_t k = ti; k < shards_.size(); k += threads_) drain(k);
      bar.arrive_and_wait();  // -> plan
      if (sync.stop) return;
      for (std::size_t k = ti; k < shards_.size(); k += threads_) execute(k);
      bar.arrive_and_wait();  // posts visible before the next drain
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads_ - 1);
  for (unsigned ti = 1; ti < threads_; ++ti) pool.emplace_back(worker, ti);
  worker(0);
  for (std::thread& t : pool) t.join();
}

std::size_t ParallelSim::drive(TimePoint deadline, bool until_mode) {
  PD_CHECK(!running_, "re-entrant parallel run");
  const std::uint64_t before = events_processed();
  running_ = true;
  if (threads_ == 1) {
    drive_serial(deadline, until_mode);
  } else {
    drive_threaded(deadline, until_mode);
  }
  running_ = false;
  if (until_mode) {
    for (Shard& s : shards_) s.sched->advance_to(deadline);
  }
  return static_cast<std::size_t>(events_processed() - before);
}

std::size_t ParallelSim::run() { return drive(0, /*until_mode=*/false); }

std::size_t ParallelSim::run_until(TimePoint deadline) {
  for (Shard& s : shards_) {
    PD_CHECK(deadline >= s.sched->now(), "deadline in the past");
  }
  return drive(deadline, /*until_mode=*/true);
}

std::uint64_t ParallelSim::events_processed() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sched->events_processed();
  return total;
}

}  // namespace pd::sim
