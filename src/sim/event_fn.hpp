// Small-buffer-optimized, move-only callable for simulator events.
//
// Every scheduled event used to pay a heap allocation for its
// std::function (libstdc++'s inline buffer is 16 bytes; even a two-pointer
// capture spills). EventFn stores callables up to kInlineBytes in place —
// sized so the data plane's payload-carrying lambdas (descriptor + vector +
// a few scalars) stay inline — and falls back to the heap only beyond that.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pd::sim {

class EventFn {
 public:
  /// Inline capture capacity. The scheduler's slab embeds EventFn directly,
  /// so raising this trades slab footprint for fewer spills.
  static constexpr std::size_t kInlineBytes = 128;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the callable into `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void move_from(EventFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace pd::sim
