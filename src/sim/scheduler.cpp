#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace pd::sim {

EventId Scheduler::schedule_impl(TimePoint t, EventFn fn, bool background) {
  PD_CHECK(t >= now_, "scheduling into the past: t=" << t << " now=" << now_);
  PD_CHECK(static_cast<bool>(fn), "null event callback");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    PD_CHECK(slot != kNpos, "event slab exhausted");
    slab_.emplace_back();
  }
  Node& n = slab_[slot];
  n.fn = std::move(fn);
  n.background = background;
  n.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
  if (!background) ++foreground_live_;
  // slot+1 keeps every valid id distinct from kInvalidEvent.
  return (static_cast<EventId>(n.gen) << 32) | (slot + 1);
}

bool Scheduler::cancel(EventId id) {
  const auto lo = static_cast<std::uint32_t>(id);
  if (lo == 0) return false;
  const std::uint32_t slot = lo - 1;
  if (slot >= slab_.size()) return false;
  Node& n = slab_[slot];
  if (n.heap_pos == kNpos || n.gen != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // already fired, already cancelled, or slot reused
  }
  if (!n.background) --foreground_live_;
  heap_remove(n.heap_pos);
  n.fn = {};  // release captured state eagerly
  free_slot(slot);
  return true;
}

void Scheduler::sift_up(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!entry.before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slab_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  heap_[pos] = entry;
  slab_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Scheduler::sift_down(std::size_t pos) {
  const HeapEntry entry = heap_[pos];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = pos * 4 + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(entry)) break;
    heap_[pos] = heap_[best];
    slab_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  heap_[pos] = entry;
  slab_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Scheduler::heap_remove(std::uint32_t pos) {
  slab_[heap_[pos].slot].heap_pos = kNpos;
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos < heap_.size()) {
    heap_[pos] = last;
    slab_[last.slot].heap_pos = pos;
    sift_down(pos);
    if (slab_[last.slot].heap_pos == pos) sift_up(pos);
  }
}

void Scheduler::free_slot(std::uint32_t slot) {
  ++slab_[slot].gen;
  free_slots_.push_back(slot);
}

bool Scheduler::pop_one() {
  if (heap_.empty()) return false;
  const HeapEntry root = heap_[0];
  Node& n = slab_[root.slot];
  PD_CHECK(root.t >= now_, "event queue went backwards");
  now_ = root.t;
  // Move the callable out before firing: the callback may schedule new
  // events, which can grow the slab and relocate nodes.
  EventFn fn = std::move(n.fn);
  const bool background = n.background;
  heap_remove(0);
  free_slot(root.slot);
  if (!background) --foreground_live_;
  ++processed_;
  fn();
  return true;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (foreground_live_ > 0 && pop_one()) ++n;
  return n;
}

std::size_t Scheduler::run_until(TimePoint deadline) {
  PD_CHECK(deadline >= now_, "deadline in the past");
  std::size_t n = 0;
  while (!heap_.empty() && heap_[0].t <= deadline) {
    if (pop_one()) ++n;
  }
  now_ = deadline;
  return n;
}

std::size_t Scheduler::run_window(TimePoint end) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_[0].t < end) {
    if (pop_one()) ++n;
  }
  return n;
}

std::size_t Scheduler::run_window_dynamic(const TimePoint& end,
                                          bool stop_when_fg_idle) {
  std::size_t n = 0;
  // `end` is re-read every iteration: the parallel driver shrinks it
  // mid-window when an event here sends cross-shard (the reflection cap,
  // DESIGN.md §15). The cap only ever shrinks to values above the current
  // event's time, so no already-fired event can violate it.
  while (!heap_.empty() && heap_[0].t < end) {
    if (stop_when_fg_idle && foreground_live_ == 0) break;
    if (pop_one()) ++n;
  }
  return n;
}

void Scheduler::advance_to(TimePoint t) {
  PD_CHECK(t >= now_, "advance_to into the past: t=" << t << " now=" << now_);
  PD_CHECK(heap_.empty() || heap_[0].t >= t,
           "advance_to over a pending event at t=" << heap_[0].t);
  now_ = t;
}

std::size_t Scheduler::run_steps(std::size_t steps) {
  std::size_t n = 0;
  while (n < steps && pop_one()) ++n;
  return n;
}

}  // namespace pd::sim
