#include "sim/scheduler.hpp"

#include <utility>

namespace pd::sim {

EventId Scheduler::schedule_impl(TimePoint t, std::function<void()> fn,
                                 bool background) {
  PD_CHECK(t >= now_, "scheduling into the past: t=" << t << " now=" << now_);
  PD_CHECK(fn != nullptr, "null event callback");
  const EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(fn), background});
  live_.emplace(id, background);
  if (!background) ++foreground_live_;
  return id;
}

EventId Scheduler::schedule_at(TimePoint t, std::function<void()> fn) {
  return schedule_impl(t, std::move(fn), /*background=*/false);
}

EventId Scheduler::schedule_background_at(TimePoint t,
                                          std::function<void()> fn) {
  return schedule_impl(t, std::move(fn), /*background=*/true);
}

bool Scheduler::cancel(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  if (!it->second) --foreground_live_;
  live_.erase(it);
  return true;
}

bool Scheduler::pop_one() {
  while (!queue_.empty()) {
    // priority_queue::top is const; we need to move the callback out.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    auto it = live_.find(entry.id);
    if (it == live_.end()) {
      continue;  // cancelled
    }
    live_.erase(it);
    if (!entry.background) --foreground_live_;
    PD_CHECK(entry.t >= now_, "event queue went backwards");
    now_ = entry.t;
    ++processed_;
    entry.fn();
    return true;
  }
  return false;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (foreground_live_ > 0 && pop_one()) ++n;
  return n;
}

std::size_t Scheduler::run_until(TimePoint deadline) {
  PD_CHECK(deadline >= now_, "deadline in the past");
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled entries at the head so the timestamp check is accurate.
    if (live_.find(queue_.top().id) == live_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    if (queue_.top().t > deadline) break;
    if (pop_one()) ++n;
  }
  now_ = deadline;
  return n;
}

std::size_t Scheduler::run_steps(std::size_t steps) {
  std::size_t n = 0;
  while (n < steps && pop_one()) ++n;
  return n;
}

}  // namespace pd::sim
