// Growable power-of-two ring buffer with FIFO semantics.
//
// Replaces std::deque on hot paths: a deque that oscillates around empty —
// exactly how per-core job queues, CQs and fabric relay queues behave —
// crosses chunk boundaries every few operations and allocates/frees a
// 512-byte node each time. The ring reuses one flat allocation that only
// grows (geometrically) to the high-water mark.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace pd::sim {

template <typename T>
class FifoRing {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] T& front() {
    PD_CHECK(size_ > 0, "front() on empty ring");
    return buf_[head_];
  }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  /// Popped slots are reset to T{} so captured state is released eagerly
  /// (the element types here hold callables and buffer descriptors).
  void pop_front() {
    PD_CHECK(size_ > 0, "pop_front() on empty ring");
    buf_[head_] = T{};
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void pop_back() {
    PD_CHECK(size_ > 0, "pop_back() on empty ring");
    buf_[(head_ + size_ - 1) & (buf_.size() - 1)] = T{};
    --size_;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pd::sim
