// Deterministic random number generation for workloads.
//
// We roll our own xoshiro256** + explicit distribution formulas instead of
// <random> distributions so that results are bit-identical across standard
// library implementations.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace pd::sim {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box–Muller (one value per call; cached pair).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Fork an independent stream (for per-client generators).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pd::sim
