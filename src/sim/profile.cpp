#include "sim/profile.hpp"

namespace pd::sim {

namespace {
BusyObserver* g_observer = nullptr;
thread_local BusyObserver* tl_observer = nullptr;
thread_local ProfileFrame tl_frame{};
}  // namespace

BusyObserver* busy_observer() {
  return tl_observer != nullptr ? tl_observer : g_observer;
}

BusyObserver* install_busy_observer(BusyObserver* o) {
  BusyObserver* prev = g_observer;
  g_observer = o;
  return prev;
}

BusyObserver* install_thread_busy_observer(BusyObserver* o) {
  BusyObserver* prev = tl_observer;
  tl_observer = o;
  return prev;
}

const ProfileFrame& current_profile_frame() { return tl_frame; }

ProfileScope::ProfileScope(std::string_view component, std::string_view detail,
                           std::int64_t tenant)
    : prev_(tl_frame) {
  tl_frame = ProfileFrame{component, detail, tenant};
}

ProfileScope::~ProfileScope() { tl_frame = prev_; }

}  // namespace pd::sim
