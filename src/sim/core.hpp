// Simulated processor cores.
//
// A Core serializes submitted work items FIFO at a configurable speed
// relative to the reference host core (DPU Arm A72 cores run slower, per
// §4.3.1 of the paper). Work is specified in *reference nanoseconds*: the
// time the job would take on a speed-1.0 host core.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/fifo_ring.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace pd::sim {

class Core {
 public:
  Core(Scheduler& sched, std::string name, double speed = 1.0);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// Enqueue `ref_work` reference-nanoseconds of work; `done` fires when it
  /// completes (after all previously submitted work).
  void submit(Duration ref_work, EventFn done = {});

  /// Total busy time accumulated so far (scaled ns, credited at completion).
  [[nodiscard]] Duration busy_ns() const { return busy_ns_; }
  /// Time at which the core becomes idle given current queue.
  [[nodiscard]] TimePoint free_at() const { return free_at_; }
  [[nodiscard]] bool idle() const { return free_at_ <= sched_.now(); }
  /// Queue backlog in scaled nanoseconds (0 when idle).
  [[nodiscard]] Duration backlog() const;
  /// Jobs in the core's FIFO ring (running + queued) — the ring occupancy
  /// the flight recorder samples.
  [[nodiscard]] std::size_t queue_len() const { return jobs_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double speed() const { return speed_; }

  /// Mark this core as running a busy-poll loop: it is pinned and 100%
  /// occupied regardless of useful work (DNE / F-stack workers).
  void set_busy_poll(bool v) { busy_poll_ = v; }
  [[nodiscard]] bool busy_poll() const { return busy_poll_; }

  /// Convert reference work to this core's scaled duration (stateless
  /// estimate, truncating fractional ns; submit() itself carries the
  /// fractional remainder across work items so repeated small jobs on a
  /// fractional-speed core don't drift — §4.3.1 DPU time accounting).
  [[nodiscard]] Duration scale(Duration ref_work) const;

 private:
  struct Job {
    Duration scaled = 0;
    EventFn done;
  };

  /// scale() plus the per-core fractional-ns carry (mutates carry state).
  Duration consume_scaled(Duration ref_work);
  void complete_front();

  Scheduler& sched_;
  std::string name_;
  double speed_;
  TimePoint free_at_ = 0;
  Duration busy_ns_ = 0;
  /// Fractional nanoseconds not yet charged (always in [0, 1)).
  double scale_carry_ = 0.0;
  bool busy_poll_ = false;
  /// In-flight work in completion (FIFO) order.
  FifoRing<Job> jobs_;
};

/// A pool of identical cores (e.g. the host CPU's cores available to the
/// kernel stack), with least-loaded selection used to model RSS spreading.
class CoreSet {
 public:
  CoreSet(Scheduler& sched, std::string prefix, std::size_t n, double speed = 1.0);

  [[nodiscard]] std::size_t size() const { return cores_.size(); }
  Core& core(std::size_t i) { return *cores_[i]; }
  const Core& core(std::size_t i) const { return *cores_[i]; }
  /// Core that will become free first.
  Core& least_loaded();
  /// Sum of busy_ns over all cores.
  [[nodiscard]] Duration total_busy_ns() const;

 private:
  std::vector<std::unique_ptr<Core>> cores_;
};

/// Samples a core's utilization (busy-time delta / window) into a TimeSeries
/// at a fixed period. Busy-poll cores report 1.0 (fully occupied).
class UtilizationProbe {
 public:
  UtilizationProbe(Scheduler& sched, const Core& core, Duration period,
                   TimeSeries& out);
  void start();
  void stop();

  /// Utilization of the most recently completed window, clamped to [0, 1].
  /// Exported as the `core_util{node,core}` registry gauge so SLO/profiler
  /// reports and the Fig. 14/15 series read the same measurement.
  [[nodiscard]] double last_util() const { return last_util_; }

 private:
  void sample();

  Scheduler& sched_;
  const Core& core_;
  Duration period_;
  TimeSeries& out_;
  Duration last_busy_ = 0;
  double last_util_ = 0.0;
  bool running_ = false;
  /// The pending sampling event, cancelled on stop() so a later start()
  /// cannot leave two sampling chains double-counting utilization.
  EventId pending_ = kInvalidEvent;
};

}  // namespace pd::sim
