#include "sim/core.hpp"

#include <algorithm>

#include "sim/profile.hpp"

namespace pd::sim {

Core::Core(Scheduler& sched, std::string name, double speed)
    : sched_(sched), name_(std::move(name)), speed_(speed) {
  PD_CHECK(speed_ > 0.0, "core speed must be positive");
}

Duration Core::scale(Duration ref_work) const {
  PD_CHECK(ref_work >= 0, "negative work");
  if (ref_work == 0) return 0;
  const auto scaled =
      static_cast<Duration>(static_cast<double>(ref_work) / speed_);
  return std::max<Duration>(scaled, 1);
}

Duration Core::consume_scaled(Duration ref_work) {
  PD_CHECK(ref_work >= 0, "negative work");
  if (ref_work == 0) return 0;
  const double ideal =
      static_cast<double>(ref_work) / speed_ + scale_carry_;
  auto scaled = static_cast<Duration>(ideal);
  scale_carry_ = ideal - static_cast<double>(scaled);
  if (scaled == 0) {
    // Positive work always costs at least 1 ns (and the carry is dropped so
    // very fast cores keep the pre-existing overcharge rather than banking
    // negative time).
    scaled = 1;
    scale_carry_ = 0.0;
  }
  return scaled;
}

Duration Core::backlog() const {
  return std::max<Duration>(0, free_at_ - sched_.now());
}

void Core::submit(Duration ref_work, EventFn done) {
  const Duration scaled = consume_scaled(ref_work);
  const TimePoint now = sched_.now();
  const TimePoint begin = std::max(free_at_, now);
  if (BusyObserver* o = busy_observer()) {
    o->on_busy(name_, current_profile_frame(), scaled);
    o->on_busy_interval(name_, current_profile_frame(), now, begin, scaled, 0);
  }
  free_at_ = begin + scaled;
  // Jobs complete FIFO (completion times are monotone and the scheduler
  // tie-breaks FIFO), so the event only needs `this`: the completion data
  // waits in jobs_ instead of bloating the scheduled callback.
  jobs_.push_back(Job{scaled, std::move(done)});
  sched_.schedule_at(free_at_, [this] { complete_front(); });
}

void Core::complete_front() {
  PD_CHECK(!jobs_.empty(), "core completion with no queued job");
  Job job = std::move(jobs_.front());
  jobs_.pop_front();
  busy_ns_ += job.scaled;
  if (job.done) job.done();
}

CoreSet::CoreSet(Scheduler& sched, std::string prefix, std::size_t n,
                 double speed) {
  PD_CHECK(n > 0, "empty core set");
  cores_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cores_.push_back(
        std::make_unique<Core>(sched, prefix + "/" + std::to_string(i), speed));
  }
}

Core& CoreSet::least_loaded() {
  Core* best = cores_.front().get();
  for (auto& c : cores_) {
    if (c->free_at() < best->free_at()) best = c.get();
  }
  return *best;
}

Duration CoreSet::total_busy_ns() const {
  Duration total = 0;
  for (const auto& c : cores_) total += c->busy_ns();
  return total;
}

UtilizationProbe::UtilizationProbe(Scheduler& sched, const Core& core,
                                   Duration period, TimeSeries& out)
    : sched_(sched), core_(core), period_(period), out_(out) {
  PD_CHECK(period_ > 0, "probe period must be positive");
}

void UtilizationProbe::start() {
  PD_CHECK(!running_, "probe already running");
  running_ = true;
  last_busy_ = core_.busy_ns();
  pending_ = sched_.schedule_background_after(period_, [this] { sample(); });
}

void UtilizationProbe::stop() {
  running_ = false;
  // Cancel the in-flight sampling event: were it left live, a later
  // start() would spawn a second chain and double-count utilization.
  if (pending_ != kInvalidEvent) {
    sched_.cancel(pending_);
    pending_ = kInvalidEvent;
  }
}

void UtilizationProbe::sample() {
  pending_ = kInvalidEvent;
  if (!running_) return;
  const Duration busy = core_.busy_ns();
  const double util =
      core_.busy_poll()
          ? 1.0
          : static_cast<double>(busy - last_busy_) / static_cast<double>(period_);
  last_busy_ = busy;
  last_util_ = std::min(util, 1.0);
  // Record at the *start* of the window the sample covers.
  out_.add(sched_.now() - period_, std::min(util, 1.0) * static_cast<double>(period_) /
                                        static_cast<double>(out_.bucket_width()));
  pending_ = sched_.schedule_background_after(period_, [this] { sample(); });
}

}  // namespace pd::sim
