// Deterministic discrete-event scheduler.
//
// A single Scheduler instance drives an entire simulated cluster: every
// node, NIC, DPU core and client shares the same virtual clock. Events at
// equal timestamps fire in insertion order (FIFO tie-break), which makes a
// run fully reproducible for a given seed.
//
// Hot-path layout: pending events live in a slab (reused slots, callable
// constructed in place — no per-event allocation for inline-sized
// callables) and are ordered by a 4-ary min-heap whose entries carry the
// (t, seq) sort key inline, so sifting never dereferences the slab (one
// contiguous array walk instead of a pointer chase per comparison).
// Handles carry a per-slot generation, so cancel() is an O(log n)
// intrusive heap removal instead of a tombstone in a side map — there is
// no per-event unordered_map and cancelled entries never linger in the
// queue.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace pd::sim {

/// Opaque handle for cancelling a scheduled event. Encodes slab slot and
/// generation; a handle for an event that already fired (or was cancelled)
/// goes stale even after the slot is reused.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(TimePoint t, EventFn fn) {
    return schedule_impl(t, std::move(fn), /*background=*/false);
  }

  /// Schedule `fn` after `d` nanoseconds of virtual time.
  EventId schedule_after(Duration d, EventFn fn) {
    PD_CHECK(d >= 0, "negative delay " << d);
    return schedule_impl(now_ + d, std::move(fn), /*background=*/false);
  }

  /// Background events (periodic housekeeping: SRQ replenishers, samplers,
  /// autoscaler ticks) do not keep run() alive: run() returns once only
  /// background events remain. They still fire while foreground work is in
  /// flight, and always fire under run_until().
  EventId schedule_background_at(TimePoint t, EventFn fn) {
    return schedule_impl(t, std::move(fn), /*background=*/true);
  }
  EventId schedule_background_after(Duration d, EventFn fn) {
    PD_CHECK(d >= 0, "negative delay " << d);
    return schedule_impl(now_ + d, std::move(fn), /*background=*/true);
  }

  /// Cancel a pending event. Returns false if it already fired / was
  /// cancelled / never existed.
  bool cancel(EventId id);

  /// Sentinel returned by next_event_time() for an empty queue.
  static constexpr TimePoint kNoEvent =
      std::numeric_limits<TimePoint>::max();

  /// Earliest pending timestamp (kNoEvent when the queue is empty). The
  /// parallel driver reads this between epochs to compute the global
  /// lower bound; it never mutates state.
  [[nodiscard]] TimePoint next_event_time() const {
    return heap_.empty() ? kNoEvent : heap_[0].t;
  }

  /// Foreground events scheduled but not yet fired/cancelled. The parallel
  /// driver sums this across shards for its termination check (the
  /// shard-local analog of run()'s stopping condition).
  [[nodiscard]] std::size_t foreground_live() const {
    return foreground_live_;
  }

  /// Process every event with timestamp strictly below `end` (one epoch
  /// window of a conservative parallel run). Does not advance now() past
  /// the last fired event, so the next window may start earlier than
  /// `end`. Returns events processed.
  std::size_t run_window(TimePoint end);

  /// run_window with a window end that may shrink *while the window runs*:
  /// `end` is read afresh before each event, so the parallel driver can
  /// cap the window the moment the shard's own cross-shard send creates a
  /// reflection hazard (adaptive lookahead, DESIGN.md §15). With
  /// `stop_when_fg_idle` the window also ends once no foreground event
  /// remains on this scheduler — the shard-local analog of run()'s stop
  /// condition, used for unbounded grants so self-rescheduling background
  /// events cannot spin forever.
  std::size_t run_window_dynamic(const TimePoint& end, bool stop_when_fg_idle);

  /// Move the clock to `t` without firing anything. Only legal when no
  /// pending event precedes `t` (the parallel driver uses it to align all
  /// shards on a run_until deadline).
  void advance_to(TimePoint t);

  /// Run until the event queue drains. Returns number of events processed.
  std::size_t run();

  /// Run all events with timestamp <= deadline, then advance now() to the
  /// deadline even if the queue still has later events.
  std::size_t run_until(TimePoint deadline);

  /// Process at most `n` events (for step-debugging in tests).
  std::size_t run_steps(std::size_t n);

  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  /// Slab slots ever allocated — the high-water mark of concurrent pending
  /// events (the slab reuses slots and only grows). Footprint diagnostics.
  [[nodiscard]] std::size_t slab_slots() const { return slab_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffff;

  struct Node {
    EventFn fn;
    std::uint32_t gen = 1;        ///< bumped on free; stales old EventIds
    std::uint32_t heap_pos = kNpos;
    bool background = false;
  };

  struct HeapEntry {
    TimePoint t;
    std::uint64_t seq;  ///< FIFO tie-break among equal timestamps
    std::uint32_t slot;

    [[nodiscard]] bool before(const HeapEntry& o) const {
      if (t != o.t) return t < o.t;
      return seq < o.seq;
    }
  };

  EventId schedule_impl(TimePoint t, EventFn fn, bool background);
  bool pop_one();  // fire the earliest live event; false if queue empty

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Detach heap_[pos] from the heap and restore the heap property.
  void heap_remove(std::uint32_t pos);
  void free_slot(std::uint32_t slot);

  std::vector<Node> slab_;
  std::vector<std::uint32_t> free_slots_;
  /// 4-ary min-heap ordered by (t, seq); keys live in the entries.
  std::vector<HeapEntry> heap_;
  std::size_t foreground_live_ = 0;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
};

}  // namespace pd::sim
