// Deterministic discrete-event scheduler.
//
// A single Scheduler instance drives an entire simulated cluster: every
// node, NIC, DPU core and client shares the same virtual clock. Events at
// equal timestamps fire in insertion order (FIFO tie-break), which makes a
// run fully reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "sim/time.hpp"

namespace pd::sim {

/// Opaque handle for cancelling a scheduled event.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedule `fn` after `d` nanoseconds of virtual time.
  EventId schedule_after(Duration d, std::function<void()> fn) {
    PD_CHECK(d >= 0, "negative delay " << d);
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Background events (periodic housekeeping: SRQ replenishers, samplers,
  /// autoscaler ticks) do not keep run() alive: run() returns once only
  /// background events remain. They still fire while foreground work is in
  /// flight, and always fire under run_until().
  EventId schedule_background_at(TimePoint t, std::function<void()> fn);
  EventId schedule_background_after(Duration d, std::function<void()> fn) {
    PD_CHECK(d >= 0, "negative delay " << d);
    return schedule_background_at(now_ + d, std::move(fn));
  }

  /// Cancel a pending event. Returns false if it already fired / was
  /// cancelled / never existed.
  bool cancel(EventId id);

  /// Run until the event queue drains. Returns number of events processed.
  std::size_t run();

  /// Run all events with timestamp <= deadline, then advance now() to the
  /// deadline even if the queue still has later events.
  std::size_t run_until(TimePoint deadline);

  /// Process at most `n` events (for step-debugging in tests).
  std::size_t run_steps(std::size_t n);

  [[nodiscard]] std::size_t pending() const { return live_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    TimePoint t;
    EventId id;
    std::function<void()> fn;
    bool background = false;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  EventId schedule_impl(TimePoint t, std::function<void()> fn, bool background);
  bool pop_one();  // fire the earliest live event; false if queue empty

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  /// Pending events: id -> background flag.
  std::unordered_map<EventId, bool> live_;
  std::size_t foreground_live_ = 0;
  TimePoint now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
};

}  // namespace pd::sim
