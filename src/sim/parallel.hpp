// Conservative parallel discrete-event simulation (PR 4 tentpole).
//
// A ParallelSim partitions the cluster into shards — one sim::Scheduler
// per simulated node (plus shard 0 for the "edge": client, ingress, and
// everything else control-plane) — and advances them in lockstep epochs.
// Shards never touch each other's state directly: every cross-shard
// effect is an absolute-time event posted through a per-(src,dst) SPSC
// mailbox and drained into the destination's scheduler at the next epoch
// boundary, in deterministic (src shard, post order) order.
//
// Safety (no causality violation) comes from the fabric's minimum
// cross-node latency L (egress serialization + propagation/2 + switch
// hop): an event executing at time t can influence another shard no
// earlier than t + L. Each epoch, shard k may therefore run every event
// strictly before
//
//   h_k = min( min_{j != k} next_j,  next_k + L ) + L
//
// where next_j is shard j's earliest pending timestamp after the drain.
// The first term bounds direct influence from other shards; the second
// bounds the reflected path k -> j -> k (k's own earliest post arrives at
// next_k + L, and any reaction needs another L to come back). The shard
// owning the global minimum always has h_k > next_k, so every epoch fires
// at least one event and virtual time advances.
//
// Determinism across worker-thread counts is structural: phases are
// barrier-separated (drain | plan | execute), mailboxes are drained in
// fixed shard order, and each shard's execution touches only its own
// state — so the merged event order is a pure function of the model, not
// of the OS schedule. One OS thread, four OS threads, or the serial
// fallback all produce bit-identical simulations.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "ipc/spsc_ring.hpp"
#include "sim/scheduler.hpp"

namespace pd::sim {

class ParallelSim {
 public:
  /// `shards`: number of schedulers (topology-determined: 1 + worker
  /// nodes). `os_threads`: worker threads driving them; 0 = auto
  /// (min(shards, hardware_concurrency)). An explicit value is honored up
  /// to `shards` — determinism never depends on it.
  explicit ParallelSim(std::size_t shards, unsigned os_threads = 0);
  ~ParallelSim();

  ParallelSim(const ParallelSim&) = delete;
  ParallelSim& operator=(const ParallelSim&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Scheduler& shard(std::size_t k) { return *shards_[k].sched; }
  /// OS threads the drivers will actually use.
  [[nodiscard]] unsigned os_threads() const { return threads_; }

  /// Conservative lookahead L in ns. Defaults to 1 (always safe); the
  /// cluster raises it to the fabric's minimum cross-node latency. Must be
  /// set before the first run.
  void set_lookahead(Duration l);
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Hooks run around a shard's execute phase on whichever thread drives
  /// it (the runtime installs the shard's observability hub here).
  using ShardHook = std::function<void(std::size_t shard)>;
  void set_shard_hooks(ShardHook enter, ShardHook leave);

  /// Post `fn` to run on shard `dst` at absolute time `t`. From model code
  /// inside a run, `t` must respect the lookahead (t >= epoch start + L);
  /// outside a run (setup phase) any future time is accepted and the event
  /// is scheduled directly. `foreground` mirrors Scheduler::schedule_at vs
  /// schedule_background_at.
  void post(std::size_t dst, TimePoint t, EventFn fn, bool foreground = true);

  /// Shard index the calling thread is currently executing, or npos when
  /// not inside a shard's execute phase (setup / main thread).
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  [[nodiscard]] static std::size_t current_shard();

  /// Run epochs until no foreground event remains on any shard (the
  /// parallel analog of Scheduler::run). Returns events processed.
  std::size_t run();
  /// Run every event with t <= deadline, then align all shards' clocks on
  /// the deadline (the parallel analog of Scheduler::run_until).
  std::size_t run_until(TimePoint deadline);

  [[nodiscard]] bool running() const { return running_; }
  /// Sum of events processed across shards.
  [[nodiscard]] std::uint64_t events_processed() const;
  /// Epoch barriers executed so far (diagnostics: epochs per wall second
  /// bound the win real cores can deliver).
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

 private:
  struct CrossEvent {
    TimePoint t = 0;
    bool foreground = true;
    EventFn fn;
  };

  /// Single-producer (src shard, execute phase) / single-consumer (dst
  /// shard, drain phase) channel. The phases never overlap, so the ring's
  /// SPSC contract holds with room to spare; `spill` absorbs bursts past
  /// the ring capacity without blocking (order is preserved: once an epoch
  /// spills, the rest of its pushes spill too, and the drain empties the
  /// ring before the spill).
  struct Mailbox {
    ipc::SpscRing<CrossEvent> ring{256};
    std::mutex mu;
    std::vector<CrossEvent> spill;
    bool spilling = false;
  };

  struct Shard {
    std::unique_ptr<Scheduler> sched;
    /// Inbound mailboxes, indexed by source shard.
    std::vector<std::unique_ptr<Mailbox>> inbox;
    TimePoint next = Scheduler::kNoEvent;  ///< after drain, for planning
    TimePoint horizon = 0;                 ///< h_k for the current epoch
  };

  void drain(std::size_t k);
  void execute(std::size_t k);
  /// Serial section between the drain and execute phases: computes the
  /// epoch horizons and the stop condition. Returns true to stop.
  bool plan(TimePoint deadline, bool until_mode);
  std::size_t drive(TimePoint deadline, bool until_mode);
  void drive_serial(TimePoint deadline, bool until_mode);
  void drive_threaded(TimePoint deadline, bool until_mode);

  std::vector<Shard> shards_;
  unsigned threads_ = 1;
  Duration lookahead_ = 1;
  ShardHook enter_shard_;
  ShardHook leave_shard_;
  bool running_ = false;
  TimePoint epoch_floor_ = 0;  ///< g of the current epoch (post() checks)
  std::atomic<std::uint64_t> in_flight_fg_{0};
  std::uint64_t epochs_ = 0;
};

}  // namespace pd::sim
