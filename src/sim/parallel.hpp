// Conservative parallel discrete-event simulation (PR 4 tentpole,
// adaptive lookahead + skip-ahead in ISSUE 9).
//
// A ParallelSim partitions the cluster into shards — one sim::Scheduler
// per simulated node (plus shard 0 for the "edge": client, ingress, and
// everything else control-plane) — and advances them in lockstep epochs.
// Shards never touch each other's state directly: every cross-shard
// effect is an absolute-time event posted through a per-(src,dst) SPSC
// mailbox and drained into the destination's scheduler at the next epoch
// boundary, in deterministic (src shard, post order) order.
//
// Safety (no causality violation) comes from per-pair lookahead: an
// event executing on shard j at time t can influence shard k no earlier
// than t + D[j][k], where D is the min-plus closure of each pair's
// minimum path latency through the fabric (so relay chains j -> m -> k
// are bounded too). Each epoch, shard k may run every event strictly
// before
//
//   H_k = min_{j != k} ( next_j + D[j][k] )
//
// where next_j is shard j's earliest pending timestamp after the drain.
// Idle shards (next_j = kNoEvent) contribute nothing — a shard whose
// inbound mailboxes are provably empty past the barrier skips straight
// ahead to its next local event instead of crawling epoch-by-epoch.
// Reflection (k -> j -> k) is bounded dynamically: the moment shard k
// posts cross-shard to j with arrival time t_a, its own window end
// shrinks to min(H_k, t_a + D[j][k]) — before that first send there is
// nothing in flight to reflect, because mailboxes only drain at
// barriers. The shard owning the global minimum always has H_k > next_k,
// so every epoch fires at least one event and virtual time advances.
// (The PR 4 formula h_k = min(min_{j!=k} next_j, next_k + L) + L with a
// single global L = min over all pairs remains available as
// HorizonPolicy::kLegacy; it is conservative but caps every window at
// next_k + 2L even when every other shard is idle.)
//
// Determinism across worker-thread counts is structural: phases are
// barrier-separated (drain | plan | execute), mailboxes are drained in
// fixed shard order, and each shard's execution touches only its own
// state — so the merged event order is a pure function of the model, not
// of the OS schedule. One OS thread, four OS threads, or the serial
// fallback all produce bit-identical simulations — and because horizons
// only regroup events into epochs without moving any timestamp, the
// adaptive and legacy policies simulate identical models too.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "ipc/spsc_ring.hpp"
#include "sim/scheduler.hpp"

namespace pd::sim {

/// Epoch-horizon computation: kAdaptive (per-pair lookahead matrix +
/// empty-mailbox skip-ahead + dynamic reflection cap) or kLegacy (PR 4's
/// uniform-L formula — kept for A/B tests and epoch-count regressions).
enum class HorizonPolicy : std::uint8_t { kAdaptive, kLegacy };

class ParallelSim {
 public:
  /// `shards`: number of schedulers (topology-determined: 1 + worker
  /// nodes). `os_threads`: worker threads driving them; 0 = auto
  /// (min(shards, hardware_concurrency)). An explicit value is honored up
  /// to `shards` — determinism never depends on it.
  explicit ParallelSim(std::size_t shards, unsigned os_threads = 0);
  ~ParallelSim();

  ParallelSim(const ParallelSim&) = delete;
  ParallelSim& operator=(const ParallelSim&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Scheduler& shard(std::size_t k) { return *shards_[k].sched; }
  /// OS threads the drivers will actually use.
  [[nodiscard]] unsigned os_threads() const { return threads_; }

  /// Uniform conservative lookahead L in ns (fills the whole matrix).
  /// Defaults to 1 (always safe); must be set before the first run.
  void set_lookahead(Duration l);
  /// Per-pair lookahead matrix: d[src][dst] lower-bounds the latency of
  /// any direct influence from an event on `src` to shard `dst` (the
  /// cluster derives it from per-pair fabric path latency). The matrix is
  /// closed under min-plus here (Floyd–Warshall), so multi-shard relay
  /// chains are bounded by the pairwise entries too. Off-diagonal entries
  /// must be >= 1; must be set before a run.
  void set_lookahead_matrix(std::vector<std::vector<Duration>> d);
  /// The smallest off-diagonal matrix entry (the uniform L of kLegacy).
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  /// Effective (closed) lookahead from shard `src` to shard `dst`.
  [[nodiscard]] Duration lookahead(std::size_t src, std::size_t dst) const {
    return d_in_[dst][src];
  }

  void set_horizon_policy(HorizonPolicy policy);
  [[nodiscard]] HorizonPolicy horizon_policy() const { return policy_; }

  /// Hooks run around a shard's execute phase on whichever thread drives
  /// it (the runtime installs the shard's observability hub here).
  using ShardHook = std::function<void(std::size_t shard)>;
  void set_shard_hooks(ShardHook enter, ShardHook leave);

  /// Post `fn` to run on shard `dst` at absolute time `t`. From model code
  /// inside a run, `t` must respect the pair's lookahead (t >= the posting
  /// shard's now() + D[src][dst]); outside a run (setup phase) any future
  /// time is accepted and the event is scheduled directly. `foreground`
  /// mirrors Scheduler::schedule_at vs schedule_background_at.
  void post(std::size_t dst, TimePoint t, EventFn fn, bool foreground = true);

  /// Shard index the calling thread is currently executing, or npos when
  /// not inside a shard's execute phase (setup / main thread).
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  [[nodiscard]] static std::size_t current_shard();

  /// Run epochs until no foreground event remains on any shard (the
  /// parallel analog of Scheduler::run). Returns events processed.
  std::size_t run();
  /// Run every event with t <= deadline, then align all shards' clocks on
  /// the deadline (the parallel analog of Scheduler::run_until).
  std::size_t run_until(TimePoint deadline);

  [[nodiscard]] bool running() const { return running_; }
  /// Sum of events processed across shards.
  [[nodiscard]] std::uint64_t events_processed() const;

  // --- protocol self-metrics (pdes.*, ISSUE 9) -----------------------------
  // Epoch/mailbox/skip counters are pure functions of the model (exported
  // through the metrics registry and the BENCH json, so protocol-cost
  // claims are machine-checkable); barrier_wait_ns is wall clock.

  /// Epoch barriers executed so far (epochs per simulated second bound the
  /// win real cores can deliver).
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  /// Epochs in which at least one shard's adaptive horizon exceeded what
  /// the legacy uniform-L formula would have granted it.
  [[nodiscard]] std::uint64_t skip_ahead_epochs() const {
    return skip_ahead_epochs_;
  }
  /// Cross-shard events posted through the mailboxes.
  [[nodiscard]] std::uint64_t mailbox_msgs() const;
  /// Wall-clock ns worker threads spent inside epoch barriers, summed over
  /// threads (0 for single-threaded drives). Machine-dependent — kept out
  /// of deterministic artifact diffs.
  [[nodiscard]] std::uint64_t barrier_wait_ns() const {
    return barrier_wait_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct CrossEvent {
    TimePoint t = 0;
    bool foreground = true;
    EventFn fn;
  };

  /// Single-producer (src shard, execute phase) / single-consumer (dst
  /// shard, drain phase) channel. The phases never overlap, so the ring's
  /// SPSC contract holds with room to spare; `spill` absorbs bursts past
  /// the ring capacity without blocking (order is preserved: once an epoch
  /// spills, the rest of its pushes spill too, and the drain empties the
  /// ring before the spill).
  struct Mailbox {
    ipc::SpscRing<CrossEvent> ring{256};
    std::mutex mu;
    std::vector<CrossEvent> spill;
    bool spilling = false;
  };

  struct Shard {
    std::unique_ptr<Scheduler> sched;
    /// Inbound mailboxes, indexed by source shard.
    std::vector<std::unique_ptr<Mailbox>> inbox;
    TimePoint next = Scheduler::kNoEvent;  ///< after drain, for planning
    TimePoint horizon = 0;                 ///< H_k for the current epoch
    /// Dynamic window end during execute: starts at `horizon`, shrinks on
    /// this shard's own cross-shard posts (the reflection cap). Only ever
    /// touched by the thread executing the shard.
    TimePoint window_cap = 0;
    /// Unbounded grant (every other shard idle): stop once local
    /// foreground work drains instead of spinning on background events.
    bool fg_bounded = false;
    /// Cross-shard events this shard posted (owner-thread counter).
    std::uint64_t posted_msgs = 0;
  };

  void drain(std::size_t k);
  void execute(std::size_t k);
  /// Serial section between the drain and execute phases: computes the
  /// epoch horizons and the stop condition. Returns true to stop.
  bool plan(TimePoint deadline, bool until_mode);
  std::size_t drive(TimePoint deadline, bool until_mode);
  void drive_serial(TimePoint deadline, bool until_mode);
  void drive_threaded(TimePoint deadline, bool until_mode);

  std::vector<Shard> shards_;
  unsigned threads_ = 1;
  Duration lookahead_ = 1;  ///< min off-diagonal entry (legacy uniform L)
  /// Inbound lookahead, transposed for plan()'s per-shard scan:
  /// d_in_[dst][src] = closed D[src][dst].
  std::vector<std::vector<Duration>> d_in_;
  HorizonPolicy policy_ = HorizonPolicy::kAdaptive;
  ShardHook enter_shard_;
  ShardHook leave_shard_;
  bool running_ = false;
  std::atomic<std::uint64_t> in_flight_fg_{0};
  std::uint64_t epochs_ = 0;
  std::uint64_t skip_ahead_epochs_ = 0;
  std::atomic<std::uint64_t> barrier_wait_ns_{0};
};

}  // namespace pd::sim
