#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

#include "common/check.hpp"

namespace pd::sim {

LatencyHistogram::LatencyHistogram() { reset(); }

void LatencyHistogram::reset() {
  buckets_.assign(64 * kSubBuckets, 0);
  count_ = 0;
  min_ = std::numeric_limits<Duration>::max();
  max_ = 0;
  sum_ns_ = 0.0;
}

std::size_t LatencyHistogram::bucket_index(Duration v) {
  if (v < 0) v = 0;
  const auto u = static_cast<std::uint64_t>(v);
  if (u < kSubBuckets) return static_cast<std::size_t>(u);
  const int octave = 63 - std::countl_zero(u);       // >= kSubBucketBits
  const int shift = octave - kSubBucketBits;         // scale into [64, 128)
  const auto scaled = static_cast<std::size_t>(u >> shift);  // in [64, 128)
  return static_cast<std::size_t>(shift) * kSubBuckets + scaled;
}

Duration LatencyHistogram::bucket_upper_bound(std::size_t index) {
  if (index < kSubBuckets) return static_cast<Duration>(index);
  const std::size_t shift = index / kSubBuckets - 1;
  const std::uint64_t scaled = (index % kSubBuckets) + kSubBuckets;
  const std::uint64_t lo = scaled << shift;
  return static_cast<Duration>(lo + ((1ULL << shift) - 1));
}

void LatencyHistogram::record(Duration v) {
  const std::size_t idx = bucket_index(v);
  PD_CHECK(idx < buckets_.size(), "latency out of histogram range: " << v);
  ++buckets_[idx];
  ++count_;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  sum_ns_ += static_cast<double>(v);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  PD_CHECK(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ns_ += other.sum_ns_;
}

Duration LatencyHistogram::min() const { return count_ == 0 ? 0 : min_; }

double LatencyHistogram::mean_ns() const {
  return count_ == 0 ? 0.0 : sum_ns_ / static_cast<double>(count_);
}

Duration LatencyHistogram::quantile(double q) const {
  // Out-of-range requests (including NaN) clamp to the nearest defined
  // quantile instead of aborting a report half-way through.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  if (count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(bucket_upper_bound(i), max_);
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), mean_ns() / 1e3,
                to_us(quantile(0.5)), to_us(quantile(0.99)), to_us(max()));
  return buf;
}

TimeSeries::TimeSeries(Duration bucket_width, std::string name)
    : width_(bucket_width), name_(std::move(name)) {
  PD_CHECK(width_ > 0, "bucket width must be positive");
}

void TimeSeries::add(TimePoint t, double value) {
  PD_CHECK(t >= 0, "negative time");
  const auto idx = static_cast<std::size_t>(t / width_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0.0);
  buckets_[idx] += value;
}

double TimeSeries::bucket_value(std::size_t i) const {
  return i < buckets_.size() ? buckets_[i] : 0.0;
}

double TimeSeries::rate_per_sec(std::size_t i) const {
  return bucket_value(i) / to_sec(width_);
}

}  // namespace pd::sim
