// RC connection pooling with shadow-QP activation (§3.3).
//
// Establishing an RC connection costs tens of milliseconds, so the DNE
// keeps pools of pre-established connections per peer node. Within a pool,
// QPs toggle between *active* (resident in the RNIC cache) and *inactive*
// (shadow — zero RNIC footprint, reactivated locally without a handshake).
// The manager bounds the node's active-QP count to avoid NIC cache
// thrashing and picks the least-congested active QP per send.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "rdma/rnic.hpp"
#include "sim/random.hpp"

namespace pd::rdma {

struct ConnectionStats {
  std::uint64_t establishments = 0;
  std::uint64_t activations = 0;
  std::uint64_t deactivations = 0;
  std::uint64_t sends = 0;
  std::uint64_t reestablishments = 0;   ///< pools rebuilt after QP errors
  std::uint64_t rebuild_retries = 0;    ///< extra handshake rounds (backoff)
};

/// Exponential-backoff parameters for pool re-establishment after faults.
/// Delays are `base * 2^attempt` capped at `cap`, each scaled by a jitter
/// factor uniform in [0.5, 1.5) from a dedicated deterministic stream.
struct BackoffConfig {
  sim::Duration base_ns = 200'000;     ///< 0.2 ms before the 2nd attempt
  sim::Duration cap_ns = 20'000'000;   ///< 20 ms ceiling
};

class ConnectionManager {
 public:
  /// `max_active`: cap on simultaneously active QPs on this node
  /// (defaults to the RNIC cache capacity).
  explicit ConnectionManager(Rnic& local,
                             int max_active = cost::kRnicQpCacheSlots);

  /// Pre-establish `count` RC connections to `remote` for `tenant`
  /// (creates QPs on both ends; `ready` fires when all are established).
  void establish(NodeId remote, TenantId tenant, int count,
                 std::function<void()> ready);

  /// Number of established connections for (remote, tenant).
  [[nodiscard]] std::size_t pool_size(NodeId remote, TenantId tenant) const;

  /// Post a WR toward `remote` on behalf of `tenant`: selects the
  /// least-congested active QP, transparently reactivating a shadow QP
  /// when none is active (the WR waits out the activation latency).
  void send(NodeId remote, TenantId tenant, const WorkRequest& wr);

  [[nodiscard]] const ConnectionStats& stats() const { return stats_; }
  [[nodiscard]] int active_count() const;

  /// Number of usable (non-error) connections for (remote, tenant).
  [[nodiscard]] std::size_t healthy_count(NodeId remote, TenantId tenant) const;

  /// Pool rebuilds currently in flight (fault recovery in progress).
  [[nodiscard]] std::size_t rebuilds_in_flight() const {
    return rebuilds_.size();
  }
  /// WRs parked waiting on a rebuild or a QP (re)activation — work the
  /// data plane has accepted but the control plane cannot yet carry.
  [[nodiscard]] std::size_t deferred_wrs() const {
    std::size_t total = 0;
    for (const auto& [key, r] : rebuilds_) {
      (void)key;
      total += r.deferred.size();
    }
    for (const auto& [qp, wrs] : pending_) {
      (void)qp;
      total += wrs.size();
    }
    return total;
  }

  /// Install the deterministic stream used for backoff jitter (callers
  /// fork it off their seeded root Rng). Optional: the default stream is
  /// fixed-seeded, so runs are reproducible either way.
  void set_backoff_rng(sim::Rng rng) { backoff_rng_ = rng; }
  void set_backoff(BackoffConfig cfg) { backoff_ = cfg; }

 private:
  struct PoolKey {
    NodeId remote;
    TenantId tenant;
    bool operator<(const PoolKey& o) const {
      if (remote != o.remote) return remote < o.remote;
      return tenant < o.tenant;
    }
  };

  /// In-flight pool rebuild after every connection errored out. WRs that
  /// arrive meanwhile park in `deferred` and replay (health-checked, via
  /// send()) once a handshake round yields usable connections.
  struct Rebuild {
    std::vector<WorkRequest> deferred;
    int attempt = 0;
    sim::TimePoint started = 0;  ///< first fault detection (for metrics)
  };

  void activate(QueuePair& qp);
  void enforce_active_cap();
  void start_rebuild(PoolKey key, const WorkRequest& wr);
  void run_rebuild(PoolKey key);
  void on_rebuilt(PoolKey key);
  [[nodiscard]] sim::Duration backoff_delay(int attempt);

  RdmaNetwork& net_;
  Rnic& local_;
  int max_active_;
  std::map<PoolKey, std::vector<QueuePair*>> pools_;
  /// WRs buffered while their QP finishes (re)activation.
  std::unordered_map<QpId, std::vector<WorkRequest>> pending_;
  std::map<PoolKey, Rebuild> rebuilds_;
  /// Activation order for LRU-ish deactivation.
  std::uint64_t activation_clock_ = 0;
  std::unordered_map<QpId, std::uint64_t> last_active_;
  ConnectionStats stats_;
  BackoffConfig backoff_;
  sim::Rng backoff_rng_{0xBACC0FFULL};
};

}  // namespace pd::rdma
