// Reliable-Connected queue pairs with shadow (active/inactive) states.
//
// Palladium keeps a pool of established RC connections per peer node and
// activates/deactivates them with the "shadow QP" mechanism of RoGUE [52]:
// an inactive QP consumes no RNIC resources and reactivation needs no
// cross-node handshake (§3.3).
#pragma once

#include <cstdint>
#include <functional>

#include "common/ids.hpp"
#include "rdma/verbs.hpp"

namespace pd::rdma {

class Rnic;

enum class QpState : std::uint8_t {
  kReset,      ///< created, not yet connected
  kConnecting, ///< RC handshake in flight (tens of ms)
  kInactive,   ///< established, shadow state: zero RNIC footprint
  kActive,     ///< established, resident in the RNIC cache
  kError,      ///< broken (retry-exceeded / fabric fault); needs re-setup
};

const char* to_string(QpState s);

class QueuePair {
 public:
  QueuePair(Rnic& rnic, QpId id, TenantId tenant);

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  /// Post a WR to the send queue. The QP must be kActive. Outstanding count
  /// rises until the send completion is harvested.
  void post_send(const WorkRequest& wr);

  /// Reactivate a shadow QP: kInactive -> kActive after the local
  /// activation latency (no cross-node handshake). `done` may be null.
  void activate(std::function<void()> done);
  /// kActive -> kInactive, releasing the QP's RNIC-cache residency.
  void deactivate();

  /// Fault injection: transition to kError (e.g. RC retry counter
  /// exceeded). Already-posted WRs complete; new posts are rejected until
  /// the connection manager re-establishes a replacement.
  void fail();

  [[nodiscard]] QpId id() const { return id_; }
  [[nodiscard]] TenantId tenant() const { return tenant_; }
  [[nodiscard]] QpState state() const { return state_; }
  [[nodiscard]] bool connected() const {
    return state_ == QpState::kActive || state_ == QpState::kInactive;
  }
  [[nodiscard]] NodeId remote_node() const { return remote_node_; }
  [[nodiscard]] QpId remote_qp() const { return remote_qp_; }
  /// WRs posted but not yet completed — the DNE's congestion signal for
  /// least-congested QP selection (§3.2).
  [[nodiscard]] int outstanding() const { return outstanding_; }
  [[nodiscard]] std::uint64_t sends_posted() const { return sends_posted_; }

 private:
  friend class Rnic;
  friend class ConnectionManager;
  friend void connect_qps(QueuePair& a, QueuePair& b,
                          std::function<void()> done);

  Rnic& rnic_;
  QpId id_;
  TenantId tenant_;
  QpState state_ = QpState::kReset;
  NodeId remote_node_{};
  QpId remote_qp_{};
  int outstanding_ = 0;
  std::uint64_t sends_posted_ = 0;
};

}  // namespace pd::rdma
