// RDMA verbs-layer types: work requests, completions, completion queues.
//
// Mirrors the IB verbs objects Palladium's DNE manipulates (§3.2, §3.5.2):
// WRs posted to a QP's send queue, completions harvested from a CQ that is
// shared node-wide, and an SRQ per tenant feeding receive buffers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "mem/descriptor.hpp"
#include "sim/fifo_ring.hpp"
#include "sim/scheduler.hpp"

namespace pd::rdma {

enum class Opcode : std::uint8_t {
  kSend,         ///< two-sided send (consumes a receive buffer remotely)
  kWrite,        ///< one-sided RDMA write
  kRead,         ///< one-sided RDMA read (remote CPU never involved)
  kCompareSwap,  ///< remote atomic (used by distributed-lock designs)
  kFetchAdd,     ///< remote atomic fetch-and-add (counters, version words)
};

const char* to_string(Opcode op);

/// Per-MR access permissions, verbs-style (IBV_ACCESS_*). A registration
/// carries the OR of these; remote one-sided ops are permission-checked at
/// the target NIC and violations come back as error completions — the
/// simulation analog of an rkey check.
inline constexpr std::uint8_t kMrLocal = 0x1;         ///< local send/recv use
inline constexpr std::uint8_t kMrRemoteRead = 0x2;    ///< one-sided READ
inline constexpr std::uint8_t kMrRemoteWrite = 0x4;   ///< one-sided WRITE
inline constexpr std::uint8_t kMrRemoteAtomic = 0x8;  ///< CAS / FAA words
inline constexpr std::uint8_t kMrRemoteAll =
    kMrLocal | kMrRemoteRead | kMrRemoteWrite | kMrRemoteAtomic;

struct WorkRequest {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  /// Local buffer: payload source for kSend/kWrite, landing slot for kRead.
  mem::BufferDescriptor local{};
  /// One-sided target slot in the remote pool (kWrite/kRead only).
  PoolId remote_pool{};
  std::uint32_t remote_index = 0;
  /// Bytes to fetch from the remote slot (kRead only; 0 = whole slot).
  std::uint32_t read_len = 0;
  /// Atomic operands (kCompareSwap / kFetchAdd). FAA reuses atomic_desired
  /// as the addend and ignores atomic_expect.
  std::uint64_t atomic_addr = 0;
  std::uint64_t atomic_expect = 0;
  std::uint64_t atomic_desired = 0;
};

/// CQE status, verbs-style. Remote permission violations (rkey mismatch,
/// op not allowed by the MR flags, unmapped atomic word) surface here at
/// the *initiator* — the target NIC rejects in hardware and the remote CPU
/// never runs.
enum class CompletionStatus : std::uint8_t {
  kSuccess,
  kRemoteAccessError,
};

const char* to_string(CompletionStatus s);

struct Completion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  CompletionStatus status = CompletionStatus::kSuccess;
  bool is_recv = false;
  QpId qp{};
  TenantId tenant{};
  /// Receive completions: buffer the payload landed in.
  mem::BufferDescriptor buffer{};
  std::uint32_t byte_len = 0;
  /// kCompareSwap: value found at the remote address (op succeeded iff
  /// found == expect). kFetchAdd: value before the add.
  std::uint64_t atomic_found = 0;
};

/// Completion queue shared by all QPs of a node (§3.3). Consumers either
/// poll or register a notify callback that fires on the empty->non-empty
/// transition (the simulation analog of a CQ event channel; the DNE uses it
/// to trigger its run-to-completion loop iteration).
///
/// CQE batching (§4.2): with coalescing armed, the notify is deferred until
/// `batch` entries accumulate or `window` ns pass since the queue went
/// non-empty — the consumer then drains N CQEs per poll event instead of
/// being woken once per completion. Defaults (batch 1 / window 0) preserve
/// immediate per-arrival notification bit-for-bit.
class CompletionQueue {
 public:
  void push(Completion c);

  /// Drain up to `max` completions (poll_cq).
  std::vector<Completion> poll(std::size_t max);

  /// Allocation-free poll: clears `out`, refills it with up to `max`
  /// completions and returns the count. Lets a run-to-completion consumer
  /// reuse one scratch vector across iterations.
  std::size_t poll_into(std::vector<Completion>& out, std::size_t max);

  [[nodiscard]] std::size_t depth() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t total_pushed() const { return total_; }
  /// Times the notify callback actually fired (events seen by the engine).
  [[nodiscard]] std::uint64_t notifies() const { return notifies_; }

  void set_notify(std::function<void()> notify) { notify_ = std::move(notify); }

  /// Arm interrupt-moderation-style coalescing. `sched` drives the window
  /// timer; batch <= 1 or window <= 0 disables coalescing.
  void set_coalescing(sim::Scheduler* sched, std::size_t batch,
                      sim::Duration window) {
    sched_ = sched;
    coalesce_batch_ = batch;
    coalesce_window_ = window;
  }

 private:
  [[nodiscard]] bool coalescing() const {
    return sched_ != nullptr && coalesce_batch_ > 1 && coalesce_window_ > 0;
  }
  void fire_notify();

  sim::FifoRing<Completion> entries_;
  std::function<void()> notify_;
  std::uint64_t total_ = 0;
  std::uint64_t notifies_ = 0;
  sim::Scheduler* sched_ = nullptr;
  std::size_t coalesce_batch_ = 1;
  sim::Duration coalesce_window_ = 0;
  sim::EventId coalesce_timer_ = sim::kInvalidEvent;
};

}  // namespace pd::rdma
