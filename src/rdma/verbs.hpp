// RDMA verbs-layer types: work requests, completions, completion queues.
//
// Mirrors the IB verbs objects Palladium's DNE manipulates (§3.2, §3.5.2):
// WRs posted to a QP's send queue, completions harvested from a CQ that is
// shared node-wide, and an SRQ per tenant feeding receive buffers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "mem/descriptor.hpp"
#include "sim/fifo_ring.hpp"
#include "sim/scheduler.hpp"

namespace pd::rdma {

enum class Opcode : std::uint8_t {
  kSend,         ///< two-sided send (consumes a receive buffer remotely)
  kWrite,        ///< one-sided RDMA write
  kCompareSwap,  ///< remote atomic (used by distributed-lock designs)
};

const char* to_string(Opcode op);

struct WorkRequest {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  /// Local buffer: payload source for kSend/kWrite.
  mem::BufferDescriptor local{};
  /// One-sided target slot in the remote pool (kWrite only).
  PoolId remote_pool{};
  std::uint32_t remote_index = 0;
  /// Atomic operands (kCompareSwap only).
  std::uint64_t atomic_addr = 0;
  std::uint64_t atomic_expect = 0;
  std::uint64_t atomic_desired = 0;
};

struct Completion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  bool is_recv = false;
  QpId qp{};
  TenantId tenant{};
  /// Receive completions: buffer the payload landed in.
  mem::BufferDescriptor buffer{};
  std::uint32_t byte_len = 0;
  /// kCompareSwap: value found at the remote address (op succeeded iff
  /// found == expect).
  std::uint64_t atomic_found = 0;
};

/// Completion queue shared by all QPs of a node (§3.3). Consumers either
/// poll or register a notify callback that fires on the empty->non-empty
/// transition (the simulation analog of a CQ event channel; the DNE uses it
/// to trigger its run-to-completion loop iteration).
///
/// CQE batching (§4.2): with coalescing armed, the notify is deferred until
/// `batch` entries accumulate or `window` ns pass since the queue went
/// non-empty — the consumer then drains N CQEs per poll event instead of
/// being woken once per completion. Defaults (batch 1 / window 0) preserve
/// immediate per-arrival notification bit-for-bit.
class CompletionQueue {
 public:
  void push(Completion c);

  /// Drain up to `max` completions (poll_cq).
  std::vector<Completion> poll(std::size_t max);

  /// Allocation-free poll: clears `out`, refills it with up to `max`
  /// completions and returns the count. Lets a run-to-completion consumer
  /// reuse one scratch vector across iterations.
  std::size_t poll_into(std::vector<Completion>& out, std::size_t max);

  [[nodiscard]] std::size_t depth() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t total_pushed() const { return total_; }
  /// Times the notify callback actually fired (events seen by the engine).
  [[nodiscard]] std::uint64_t notifies() const { return notifies_; }

  void set_notify(std::function<void()> notify) { notify_ = std::move(notify); }

  /// Arm interrupt-moderation-style coalescing. `sched` drives the window
  /// timer; batch <= 1 or window <= 0 disables coalescing.
  void set_coalescing(sim::Scheduler* sched, std::size_t batch,
                      sim::Duration window) {
    sched_ = sched;
    coalesce_batch_ = batch;
    coalesce_window_ = window;
  }

 private:
  [[nodiscard]] bool coalescing() const {
    return sched_ != nullptr && coalesce_batch_ > 1 && coalesce_window_ > 0;
  }
  void fire_notify();

  sim::FifoRing<Completion> entries_;
  std::function<void()> notify_;
  std::uint64_t total_ = 0;
  std::uint64_t notifies_ = 0;
  sim::Scheduler* sched_ = nullptr;
  std::size_t coalesce_batch_ = 1;
  sim::Duration coalesce_window_ = 0;
  sim::EventId coalesce_timer_ = sim::kInvalidEvent;
};

}  // namespace pd::rdma
