#include "rdma/rnic.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "core/trace_hooks.hpp"
#include "obs/hub.hpp"
#include "proto/cost_model.hpp"
#include "sim/profile.hpp"

namespace pd::rdma {
namespace {

/// RNR retry delay once the receiver reposts buffers (abbreviated from the
/// IB RNR-NAK timer range).
constexpr sim::Duration kRnrRetryNs = 5'000;
/// Bytes on the wire for a CAS request/response.
constexpr Bytes kAtomicWireBytes = 32;

}  // namespace

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kSend: return "SEND";
    case Opcode::kWrite: return "WRITE";
    case Opcode::kRead: return "READ";
    case Opcode::kCompareSwap: return "CAS";
    case Opcode::kFetchAdd: return "FAA";
  }
  return "?";
}

const char* to_string(CompletionStatus s) {
  switch (s) {
    case CompletionStatus::kSuccess: return "success";
    case CompletionStatus::kRemoteAccessError: return "remote-access-error";
  }
  return "?";
}

const char* to_string(QpState s) {
  switch (s) {
    case QpState::kReset: return "reset";
    case QpState::kConnecting: return "connecting";
    case QpState::kInactive: return "inactive";
    case QpState::kActive: return "active";
    case QpState::kError: return "error";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// CompletionQueue
// ---------------------------------------------------------------------------

void CompletionQueue::fire_notify() {
  if (coalesce_timer_ != sim::kInvalidEvent) {
    sched_->cancel(coalesce_timer_);
    coalesce_timer_ = sim::kInvalidEvent;
  }
  ++notifies_;
  notify_();
}

void CompletionQueue::push(Completion c) {
  const bool was_empty = entries_.empty();
  entries_.push_back(std::move(c));
  ++total_;
  if (!notify_) return;
  if (!coalescing()) {
    if (was_empty) {
      ++notifies_;
      notify_();
    }
    return;
  }
  if (entries_.size() >= coalesce_batch_) {
    fire_notify();
    return;
  }
  if (was_empty && coalesce_timer_ == sim::kInvalidEvent) {
    // Foreground: the parked completions must still be delivered before
    // run() declares the simulation drained.
    coalesce_timer_ = sched_->schedule_after(coalesce_window_, [this] {
      coalesce_timer_ = sim::kInvalidEvent;
      if (!entries_.empty() && notify_) {
        ++notifies_;
        notify_();
      }
    });
  }
}

std::vector<Completion> CompletionQueue::poll(std::size_t max) {
  std::vector<Completion> out;
  poll_into(out, max);
  return out;
}

std::size_t CompletionQueue::poll_into(std::vector<Completion>& out,
                                       std::size_t max) {
  out.clear();
  const std::size_t n = std::min(max, entries_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
  return n;
}

// ---------------------------------------------------------------------------
// RdmaNetwork
// ---------------------------------------------------------------------------

Rnic& RdmaNetwork::rnic(NodeId node) {
  auto it = rnics_.find(node);
  PD_CHECK(it != rnics_.end(), "no RNIC on node " << node);
  return *it->second;
}

void RdmaNetwork::set_node_scheduler(NodeId node, sim::Scheduler& sched) {
  PD_CHECK(rnics_.count(node) == 0,
           "pin node " << node << " to a shard before creating its RNIC");
  node_scheds_[node] = &sched;
}

sim::Scheduler& RdmaNetwork::scheduler_for(NodeId node) {
  auto it = node_scheds_.find(node);
  return it == node_scheds_.end() ? sched_ : *it->second;
}

void RdmaNetwork::set_remote_post(fabric::Switch::RemotePost post) {
  remote_post_ = post;
  switch_.set_remote_post(std::move(post));
}

void RdmaNetwork::post_to_node(NodeId node, sim::TimePoint t, sim::EventFn fn) {
  if (remote_post_) {
    remote_post_(node, t, std::move(fn));
  } else {
    scheduler_for(node).schedule_at(t, std::move(fn));
  }
}

std::vector<NodeId> RdmaNetwork::rnic_nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(rnics_.size());
  for (const auto& [id, rnic_ptr] : rnics_) nodes.push_back(id);
  std::sort(nodes.begin(), nodes.end(),
            [](NodeId a, NodeId b) { return a.value() < b.value(); });
  return nodes;
}

void RdmaNetwork::register_rnic(NodeId node, Rnic* rnic) {
  PD_CHECK(rnics_.emplace(node, rnic).second,
           "node " << node << " already has an RNIC");
  switch_.attach(node, scheduler_for(node));
}

void RdmaNetwork::unregister_rnic(NodeId node) {
  rnics_.erase(node);
  datagram_handlers_.erase(node);
}

void RdmaNetwork::set_datagram_handler(NodeId node, DatagramHandler handler) {
  datagram_handlers_[node] = std::move(handler);
}

void RdmaNetwork::send_datagram(NodeId from, NodeId to, const Datagram& d) {
  PD_CHECK(switch_.attached(from) && switch_.attached(to),
           "datagram between unattached nodes " << from << " -> " << to);
  if (auto it = rnics_.find(from); it != rnics_.end()) {
    ++it->second->counters_.datagrams;
  }
  switch_.send(from, to, kDatagramBytes, [this, from, to, d] {
    auto it = datagram_handlers_.find(to);
    if (it != datagram_handlers_.end() && it->second) it->second(from, d);
  });
}

void RdmaNetwork::fail_node_qps(NodeId node) {
  for (auto& [id, rnic] : rnics_) {
    if (id == node) {
      rnic->fail_qps();
    } else {
      rnic->fail_qps(node);
    }
  }
}

// ---------------------------------------------------------------------------
// QueuePair
// ---------------------------------------------------------------------------

QueuePair::QueuePair(Rnic& rnic, QpId id, TenantId tenant)
    : rnic_(rnic), id_(id), tenant_(tenant) {}

void QueuePair::post_send(const WorkRequest& wr) {
  PD_CHECK(state_ == QpState::kActive,
           "post_send on QP " << id_ << " in state " << to_string(state_));
  ++outstanding_;
  ++sends_posted_;
  rnic_.execute(*this, wr);
}

void QueuePair::activate(std::function<void()> done) {
  PD_CHECK(state_ == QpState::kInactive,
           "activate QP in state " << to_string(state_));
  rnic_.sched_.schedule_after(cost::kQpActivateNs,
                              [this, done = std::move(done)] {
                                // A fault may have broken the QP while the
                                // activation was in flight; don't resurrect
                                // it. `done` still fires so the connection
                                // manager can notice and recover.
                                if (state_ == QpState::kInactive) {
                                  state_ = QpState::kActive;
                                  ++rnic_.active_qps_;
                                }
                                if (done) done();
                              });
}

void QueuePair::deactivate() {
  PD_CHECK(state_ == QpState::kActive,
           "deactivate QP in state " << to_string(state_));
  PD_CHECK(outstanding_ == 0, "deactivate QP with outstanding WRs");
  state_ = QpState::kInactive;
  --rnic_.active_qps_;
}

void QueuePair::fail() {
  PD_CHECK(connected() || state_ == QpState::kConnecting,
           "fail() on a QP that was never set up");
  if (state_ == QpState::kActive) --rnic_.active_qps_;
  state_ = QpState::kError;
}

// ---------------------------------------------------------------------------
// Rnic
// ---------------------------------------------------------------------------

Rnic::Rnic(RdmaNetwork& net, NodeId node, mem::MemoryDomain& host_mem)
    : sched_(net.scheduler_for(node)), net_(net), node_(node),
      host_mem_(host_mem),
      ledger_name_("node" + std::to_string(node.value()) + "/rnic") {
  net_.register_rnic(node, this);
}

void Rnic::ledger_nic(std::int64_t tenant, sim::Duration ns,
                      std::uint64_t bytes) {
  auto* h = obs::hub();
  if (h == nullptr || !h->ledger.enabled()) return;
  const sim::TimePoint now = sched_.now();
  h->ledger.occupy(obs::LedgerKind::kNic, ledger_name_, tenant, now, now + ns);
  if (bytes > 0) {
    h->ledger.add_bytes(obs::LedgerKind::kNic, ledger_name_, tenant, bytes);
  }
}

Rnic::~Rnic() { net_.unregister_rnic(node_); }

// PoolId layout is (node << 16) | creation-order counter starting at 1
// (see MemoryDomain::create_pool), so registered_ is indexed by the dense
// low-half counter only — indexing by the full value would allocate
// node.value()*64KiB of flag bytes per RNIC for nothing.
void Rnic::register_memory(PoolId pool, std::uint8_t access) {
  auto& tm = host_mem_.by_pool(pool);
  PD_CHECK(tm.exported_to_rdma(),
           "pool " << pool << " not exported for RDMA before registration");
  PD_CHECK(access != 0, "MR registration needs at least one access flag");
  const std::uint32_t idx = (pool.value() & 0xffff) - 1;
  if (registered_.size() <= idx) registered_.resize(idx + 1);
  registered_[idx] = static_cast<char>(access);
}

bool Rnic::memory_registered(PoolId pool) const {
  if ((pool.value() >> 16) != node_.value()) return false;
  const std::uint32_t idx = (pool.value() & 0xffff) - 1;
  return idx < registered_.size() && registered_[idx] != 0;
}

std::uint8_t Rnic::mr_access(PoolId pool) const {
  if ((pool.value() >> 16) != node_.value()) return 0;
  const std::uint32_t idx = (pool.value() & 0xffff) - 1;
  return idx < registered_.size() ? static_cast<std::uint8_t>(registered_[idx])
                                  : 0;
}

QueuePair& Rnic::create_qp(TenantId tenant) {
  const QpId id{(node_.value() << 20) | next_qp_++};
  auto qp = std::make_unique<QueuePair>(*this, id, tenant);
  QueuePair* raw = qp.get();
  qps_.emplace(id, std::move(qp));
  return *raw;
}

QueuePair& Rnic::qp(QpId id) {
  auto it = qps_.find(id);
  PD_CHECK(it != qps_.end(), "unknown QP " << id << " on node " << node_);
  return *it->second;
}

void Rnic::post_srq_recv(TenantId tenant, const mem::BufferDescriptor& buffer) {
  PD_CHECK(memory_registered(buffer.pool),
           "SRQ buffer from unregistered pool " << buffer.pool);
  PD_CHECK(buffer.tenant == tenant, "SRQ buffer tenant mismatch");
  auto& pool = host_mem_.by_pool(buffer.pool).pool();
  PD_CHECK(pool.owner_of(buffer) == mem::actor_rnic(node_),
           "SRQ buffer not owned by the RNIC (transfer before posting)");

  auto& rnr = rnr_queues_[tenant];
  if (!rnr.empty()) {
    // A sender is waiting in RNR state: reserve THIS buffer for it (if it
    // went through the SRQ, a concurrent arrival could steal it before the
    // retry timer fires) and deliver after the retry delay.
    PendingRecv pending = std::move(rnr.front());
    rnr.pop_front();
    sched_.schedule_after(kRnrRetryNs, [this, tenant, buffer,
                                        pending = std::move(pending)]() mutable {
      deliver_into(buffer, pending.dest_qp, tenant, pending.len,
                   std::move(pending.payload));
    });
    return;
  }
  srqs_[tenant].push_back(buffer);
}

std::size_t Rnic::srq_depth(TenantId tenant) const {
  auto it = srqs_.find(tenant);
  return it == srqs_.end() ? 0 : it->second.size();
}

Rnic::QpStateCounts Rnic::qp_state_counts() const {
  QpStateCounts c;
  for (const auto& [id, qp] : qps_) {
    (void)id;
    switch (qp->state()) {
      case QpState::kReset: ++c.reset; break;
      case QpState::kConnecting: ++c.connecting; break;
      case QpState::kInactive: ++c.inactive; break;
      case QpState::kActive: ++c.active; break;
      case QpState::kError: ++c.error; break;
    }
  }
  return c;
}

int Rnic::sq_outstanding() const {
  int total = 0;
  for (const auto& [id, qp] : qps_) {
    (void)id;
    total += qp->outstanding();
  }
  return total;
}

std::size_t Rnic::rnr_depth(TenantId tenant) const {
  auto it = rnr_queues_.find(tenant);
  return it == rnr_queues_.end() ? 0 : it->second.size();
}

std::size_t Rnic::drain_srq(TenantId tenant) {
  auto it = srqs_.find(tenant);
  if (it == srqs_.end()) return 0;
  const std::size_t drained = it->second.size();
  for (const mem::BufferDescriptor& d : it->second) {
    if (drain_listener_) drain_listener_(tenant, d);
    host_mem_.by_pool(d.pool).pool().release(d, mem::actor_rnic(node_));
  }
  it->second.clear();
  return drained;
}

std::size_t Rnic::drain_all_srqs() {
  std::size_t drained = 0;
  for (auto& [tenant, srq] : srqs_) {
    (void)srq;
    drained += drain_srq(tenant);
  }
  return drained;
}

void Rnic::fail_qps(NodeId peer) {
  for (auto& [id, qp] : qps_) {
    if (peer.valid() && qp->remote_node() != peer) continue;
    if (qp->connected() || qp->state() == QpState::kConnecting) qp->fail();
  }
}

void Rnic::set_write_monitor(PoolId pool, WriteMonitor monitor) {
  write_monitors_[pool] = std::move(monitor);
}

void Rnic::set_atomic_word(std::uint64_t addr, std::uint64_t value,
                           PoolId guard) {
  atomic_words_[addr] = AtomicWord{value, guard};
}

std::uint64_t Rnic::atomic_word(std::uint64_t addr) const {
  auto it = atomic_words_.find(addr);
  PD_CHECK(it != atomic_words_.end(), "unknown atomic word " << addr);
  return it->second.value;
}

sim::Duration Rnic::wr_overhead() {
  sim::Duration overhead = cost::kRnicPerWrNs;
  if (active_qps_ > cost::kRnicQpCacheSlots) {
    overhead += cost::kQpCacheMissPenaltyNs;
    ++counters_.cache_miss_wrs;
  }
  return overhead;
}

void Rnic::execute(QueuePair& qp, const WorkRequest& wr) {
  PD_CHECK(qp.remote_node_.valid(), "QP has no remote peer");
  const NodeId dest = qp.remote_node_;

  if (wr.opcode == Opcode::kCompareSwap || wr.opcode == Opcode::kFetchAdd) {
    if (wr.opcode == Opcode::kCompareSwap) {
      ++counters_.atomics;
    } else {
      ++counters_.fetch_adds;
    }
    const sim::Duration local = wr_overhead();
    ledger_nic(qp.tenant_.value(), local, 0);
    sched_.schedule_after(local, [this, dest, from_qp = qp.id_,
                                  tenant = qp.tenant_, wr] {
      // The wire frame carries the posting tenant in the profile frame so
      // the fabric can attribute link occupancy (ISSUE 10).
      sim::ProfileScope wire{"rnic", "wire",
                             static_cast<std::int64_t>(tenant.value())};
      net_.fabric().send(node_, dest, kAtomicWireBytes, [this, dest, from_qp, wr] {
        net_.rnic(dest).arrive_atomic(node_, from_qp, wr);
      });
    });
    return;
  }

  if (wr.opcode == Opcode::kRead) {
    // One-sided READ: a small request frame travels out; the payload comes
    // back by NIC-to-NIC DMA. The landing buffer must be a registered local
    // MR the posting engine handed to this RNIC.
    PD_CHECK(memory_registered(wr.local.pool),
             "READ lands in unregistered pool " << wr.local.pool);
    ++counters_.reads;
    const sim::Duration local = wr_overhead();
    ledger_nic(qp.tenant_.value(), local, 0);
    sched_.schedule_after(local, [this, dest, from_qp = qp.id_,
                                  tenant = qp.tenant_, wr] {
      sim::ProfileScope wire{"rnic", "wire",
                             static_cast<std::int64_t>(tenant.value())};
      net_.fabric().send(node_, dest, kAtomicWireBytes, [this, dest, from_qp, wr] {
        net_.rnic(dest).arrive_read(node_, from_qp, wr);
      });
    });
    return;
  }

  // SEND / WRITE carry payload out of a registered local buffer that the
  // posting engine handed to the RNIC (ownership token moved on post).
  PD_CHECK(memory_registered(wr.local.pool),
           "WR uses unregistered pool " << wr.local.pool);
  auto& pool = host_mem_.by_pool(wr.local.pool).pool();
  const auto span = pool.access(wr.local, mem::actor_rnic(node_));
  const std::uint32_t len = wr.local.length;
  PD_CHECK(len <= span.size(), "WR length exceeds buffer");

  if (wr.opcode == Opcode::kSend && obs::hub() != nullptr &&
      len >= sizeof(core::MessageHeader)) {
    // Baton hop for the wire transit: close the sender's engine_tx span and
    // stamp a "fabric" span into the in-buffer header *before* the payload
    // is copied onto the wire, so the receiving engine can close it. The
    // RNIC peeks at the message framing only for tracing; the data path
    // stays payload-opaque.
    core::MessageHeader h = core::read_header(span);
    if (core::trace_hop(h, "fabric",
                        "node" + std::to_string(node_.value()) + "/rnic",
                        sched_.now())) {
      core::write_header(span, h);
    }
  }
  std::vector<std::byte> payload(span.begin(), span.begin() + len);

  counters_.payload_bytes += len;
  if (wr.opcode == Opcode::kSend) {
    ++counters_.sends;
  } else {
    ++counters_.writes;
  }

  // NIC processing + DMA read of the payload from host memory.
  const sim::Duration local_ns =
      wr_overhead() +
      static_cast<sim::Duration>(static_cast<double>(len) * cost::kRnicPerByteNs);
  ledger_nic(qp.tenant_.value(), local_ns, len);

  sched_.schedule_after(local_ns, [this, &qp, wr, dest, len,
                                   payload = std::move(payload)]() mutable {
    // Local send completion: the WR left the NIC; the engine may recycle
    // the buffer (payload already staged for the wire).
    Completion done;
    done.wr_id = wr.wr_id;
    done.opcode = wr.opcode;
    done.is_recv = false;
    done.qp = qp.id_;
    done.tenant = qp.tenant_;
    done.buffer = wr.local;
    done.byte_len = len;
    --qp.outstanding_;
    cq_.push(std::move(done));

    sim::ProfileScope wire{"rnic", "wire",
                           static_cast<std::int64_t>(qp.tenant_.value())};
    net_.fabric().send(
        node_, dest, len,
        [this, dest, from_qp = qp.id_, remote_qp = qp.remote_qp_,
         tenant = qp.tenant_, wr, len,
         payload = std::move(payload)]() mutable {
          Rnic& peer = net_.rnic(dest);
          if (wr.opcode == Opcode::kSend) {
            peer.arrive_send(remote_qp, tenant, len, std::move(payload));
          } else {
            peer.arrive_write(node_, from_qp, wr, len, std::move(payload));
          }
        });
  });
}

void Rnic::arrive_send(QpId dest_qp, TenantId tenant, std::uint32_t len,
                       std::vector<std::byte> payload) {
  auto& srq = srqs_[tenant];
  if (srq.empty()) {
    ++counters_.rnr_events;
    auto& rnr = rnr_queues_[tenant];
    if (rnr.size() >= rnr_queue_limit_) {
      // Receiver-side overload: drop the arrival and NACK the sender's
      // reliability layer so it sheds immediately instead of retrying into
      // the same full queue.
      ++counters_.rnr_drops;
      if (len >= sizeof(core::MessageHeader)) {
        const core::MessageHeader h = core::read_header(payload);
        const NodeId sender = qp(dest_qp).remote_node();
        if (h.seq != 0 && sender.valid()) {
          net_.send_datagram(node_, sender,
                             Datagram{Datagram::Kind::kNack, h.seq});
        }
      }
      return;
    }
    rnr.push_back(PendingRecv{dest_qp, len, std::move(payload)});
    return;
  }
  deliver_to_srq(dest_qp, tenant, len, std::move(payload));
}

void Rnic::deliver_to_srq(QpId dest_qp, TenantId tenant, std::uint32_t len,
                          std::vector<std::byte> payload) {
  auto& srq = srqs_[tenant];
  PD_CHECK(!srq.empty(), "deliver_to_srq on an empty SRQ");
  mem::BufferDescriptor buffer = srq.front();
  srq.pop_front();
  deliver_into(buffer, dest_qp, tenant, len, std::move(payload));
}

void Rnic::deliver_into(mem::BufferDescriptor buffer, QpId dest_qp,
                        TenantId tenant, std::uint32_t len,
                        std::vector<std::byte> payload) {
  auto& pool = host_mem_.by_pool(buffer.pool).pool();
  auto span = pool.access(buffer, mem::actor_rnic(node_));
  PD_CHECK(len <= span.size(), "incoming payload larger than receive buffer");
  std::memcpy(span.data(), payload.data(), len);
  buffer = pool.resize(buffer, mem::actor_rnic(node_), len);

  ++counters_.recvs;
  const sim::Duration ns =
      cost::kRnicPerWrNs +
      static_cast<sim::Duration>(static_cast<double>(len) * cost::kRnicPerByteNs) +
      cost::kRnicCqeNs;
  ledger_nic(tenant.value(), ns, len);
  sched_.schedule_after(ns, [this, dest_qp, tenant, buffer, len] {
    Completion c;
    c.opcode = Opcode::kSend;
    c.is_recv = true;
    c.qp = dest_qp;
    c.tenant = tenant;
    c.buffer = buffer;
    c.byte_len = len;
    cq_.push(std::move(c));
  });
}

void Rnic::arrive_write(NodeId from, QpId from_qp, const WorkRequest& wr,
                        std::uint32_t len, std::vector<std::byte> payload) {
  // One-sided: land directly in the addressed slot; no SRQ, no CQE on this
  // side. The remote CPU is never involved — and never consulted. The NIC
  // does check the rkey: an MR that never granted remote WRITE NAKs the
  // frame back to the initiator instead of DMA-ing it (satellite of ISSUE 8
  // — this used to be unchecked).
  if ((mr_access(wr.remote_pool) & kMrRemoteWrite) == 0) {
    ++counters_.access_errors;
    sched_.schedule_after(cost::kRnicPerWrNs, [this, from, from_qp, wr] {
      net_.fabric().send(node_, from, kAtomicWireBytes, [this, from, from_qp, wr] {
        // The initiator already saw its NIC-exit CQE (outstanding_ slot
        // freed there), so the late NAK raises a pure error CQE.
        net_.rnic(from).complete_error(from_qp, wr, /*outstanding=*/false);
      });
    });
    return;
  }
  auto& pool = host_mem_.by_pool(wr.remote_pool).pool();
  mem::BufferDescriptor target{wr.remote_pool, wr.remote_index, len,
                               pool.tenant()};
  auto span = pool.access(target, mem::actor_rnic(node_));
  PD_CHECK(len <= span.size(), "one-sided write larger than target slot");
  std::memcpy(span.data(), payload.data(), len);

  const sim::Duration ns =
      cost::kRnicPerWrNs +
      static_cast<sim::Duration>(static_cast<double>(len) * cost::kRnicPerByteNs);
  ledger_nic(pool.tenant().value(), ns, len);
  sched_.schedule_after(ns, [this, target, len] {
    auto it = write_monitors_.find(target.pool);
    if (it != write_monitors_.end() && it->second) it->second(target, len);
  });
}

void Rnic::arrive_read(NodeId from, QpId from_qp, WorkRequest wr) {
  // One-sided READ at the target NIC: pure DMA out of the slab, zero remote
  // CPU. The permission check is the NIC's rkey validation.
  if ((mr_access(wr.remote_pool) & kMrRemoteRead) == 0) {
    ++counters_.access_errors;
    sched_.schedule_after(cost::kRnicPerWrNs, [this, from, from_qp, wr] {
      net_.fabric().send(node_, from, kAtomicWireBytes, [this, from, from_qp, wr] {
        net_.rnic(from).complete_error(from_qp, wr, /*outstanding=*/true);
      });
    });
    return;
  }
  auto& pool = host_mem_.by_pool(wr.remote_pool).pool();
  mem::BufferDescriptor source{wr.remote_pool, wr.remote_index, 0,
                               pool.tenant()};
  auto span = pool.access(source, mem::actor_rnic(node_));
  const std::uint32_t len =
      wr.read_len == 0 ? static_cast<std::uint32_t>(span.size()) : wr.read_len;
  if (len > span.size()) {
    // Out-of-bounds fetch is the same hardware NAK as a permission miss.
    ++counters_.access_errors;
    sched_.schedule_after(cost::kRnicPerWrNs, [this, from, from_qp, wr] {
      net_.fabric().send(node_, from, kAtomicWireBytes, [this, from, from_qp, wr] {
        net_.rnic(from).complete_error(from_qp, wr, /*outstanding=*/true);
      });
    });
    return;
  }
  std::vector<std::byte> payload(span.begin(), span.begin() + len);
  counters_.payload_bytes += len;

  // NIC processing + DMA read of the slab bytes, then the response frame
  // carries the payload back to the initiator.
  const sim::Duration ns =
      cost::kRnicPerWrNs +
      static_cast<sim::Duration>(static_cast<double>(len) * cost::kRnicPerByteNs);
  ledger_nic(pool.tenant().value(), ns, len);
  sched_.schedule_after(ns, [this, from, from_qp, wr, len,
                             tenant = pool.tenant(),
                             payload = std::move(payload)]() mutable {
    sim::ProfileScope wire{"rnic", "wire",
                           static_cast<std::int64_t>(tenant.value())};
    net_.fabric().send(node_, from, len,
                       [this, from, from_qp, wr,
                        payload = std::move(payload)]() mutable {
                         net_.rnic(from).complete_read(from_qp, wr,
                                                       std::move(payload));
                       });
  });
}

void Rnic::complete_read(QpId qp_id, const WorkRequest& wr,
                         std::vector<std::byte> payload) {
  // Response landed at the initiator: DMA into the posted landing buffer,
  // then raise the (only) CQE for this WR.
  auto& pool = host_mem_.by_pool(wr.local.pool).pool();
  auto span = pool.access(wr.local, mem::actor_rnic(node_));
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  PD_CHECK(len <= span.size(), "READ response larger than landing buffer");
  std::memcpy(span.data(), payload.data(), len);
  const mem::BufferDescriptor sized =
      pool.resize(wr.local, mem::actor_rnic(node_), len);

  const sim::Duration ns =
      cost::kRnicPerWrNs +
      static_cast<sim::Duration>(static_cast<double>(len) * cost::kRnicPerByteNs) +
      cost::kRnicCqeNs;
  ledger_nic(qp(qp_id).tenant().value(), ns, len);
  sched_.schedule_after(ns, [this, qp_id, wr, sized, len] {
    QueuePair& q = qp(qp_id);
    --q.outstanding_;
    Completion c;
    c.wr_id = wr.wr_id;
    c.opcode = Opcode::kRead;
    c.is_recv = false;
    c.qp = qp_id;
    c.tenant = q.tenant();
    c.buffer = sized;
    c.byte_len = len;
    cq_.push(std::move(c));
  });
}

void Rnic::complete_error(QpId qp_id, const WorkRequest& wr, bool outstanding) {
  QueuePair& q = qp(qp_id);
  if (outstanding) --q.outstanding_;
  Completion c;
  c.wr_id = wr.wr_id;
  c.opcode = wr.opcode;
  c.status = CompletionStatus::kRemoteAccessError;
  c.is_recv = false;
  c.qp = qp_id;
  c.tenant = q.tenant();
  c.buffer = wr.local;
  if (wr.opcode != Opcode::kCompareSwap && wr.opcode != Opcode::kFetchAdd) {
    c.byte_len = wr.local.length;
  }
  cq_.push(std::move(c));
}

void Rnic::arrive_atomic(NodeId from, QpId from_qp, WorkRequest wr) {
  auto it = atomic_words_.find(wr.atomic_addr);
  const bool denied =
      it == atomic_words_.end() ||
      (it->second.guard.valid() &&
       (mr_access(it->second.guard) & kMrRemoteAtomic) == 0);
  if (denied) {
    // Used to be a PD_CHECK abort — but a racing CAS against torn-down
    // tenant state is reachable once tenants churn, and real NICs answer
    // with a remote-access NAK, not a machine check. Reject at the same
    // response latency as a served atomic so the initiator's timing does
    // not leak mapping state.
    ++counters_.atomic_access_errors;
    sched_.schedule_after(cost::kRdmaAtomicExtraNs, [this, from, from_qp, wr] {
      net_.fabric().send(node_, from, kAtomicWireBytes, [this, from, from_qp, wr] {
        net_.rnic(from).complete_error(from_qp, wr, /*outstanding=*/true);
      });
    });
    return;
  }

  const std::uint64_t found = it->second.value;
  if (wr.opcode == Opcode::kFetchAdd) {
    it->second.value = found + wr.atomic_desired;
  } else if (found == wr.atomic_expect) {
    it->second.value = wr.atomic_desired;
  }

  sched_.schedule_after(cost::kRdmaAtomicExtraNs, [this, from, from_qp, wr,
                                                   found] {
    net_.fabric().send(node_, from, kAtomicWireBytes, [this, from, from_qp, wr,
                                                       found] {
      Rnic& origin = net_.rnic(from);
      QueuePair& qp = origin.qp(from_qp);
      --qp.outstanding_;
      Completion c;
      c.wr_id = wr.wr_id;
      c.opcode = wr.opcode;
      c.is_recv = false;
      c.qp = from_qp;
      c.tenant = qp.tenant();
      c.atomic_found = found;
      origin.cq_.push(std::move(c));
    });
  });
}

void connect_qps(QueuePair& a, QueuePair& b, std::function<void()> done) {
  PD_CHECK(a.state_ == QpState::kReset && b.state_ == QpState::kReset,
           "connect_qps on non-fresh QPs");
  PD_CHECK(&a.rnic_ != &b.rnic_, "RC connection must span two nodes");
  a.remote_node_ = b.rnic_.node();
  a.remote_qp_ = b.id();
  b.remote_node_ = a.rnic_.node();
  b.remote_qp_ = a.id();
  a.state_ = QpState::kConnecting;
  b.state_ = QpState::kConnecting;
  a.rnic_.sched_.schedule_after(cost::kRcConnectNs,
                                [&a, &b, done = std::move(done)] {
                                  // A fault during the handshake leaves the
                                  // affected end in kError; completing the
                                  // handshake must not resurrect it. `done`
                                  // fires regardless so the caller can
                                  // inspect the outcome and retry.
                                  if (a.state_ == QpState::kConnecting) {
                                    a.state_ = QpState::kInactive;
                                  }
                                  if (b.state_ == QpState::kConnecting) {
                                    b.state_ = QpState::kInactive;
                                  }
                                  if (done) done();
                                });
}

}  // namespace pd::rdma
