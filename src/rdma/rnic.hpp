// RNIC model: the ConnectX-6-class NIC integrated into each Bluefield DPU.
//
// Executes WRs with per-WR processing cost, line-rate DMA (payload bytes
// actually move between the two nodes' buffer pools — the "hardware copy"
// that zero-copy permits), QP-cache thrashing beyond a bounded active set,
// per-tenant shared receive queues, and RNR handling when a tenant's SRQ
// underruns.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "mem/memory_domain.hpp"
#include "rdma/qp.hpp"
#include "rdma/verbs.hpp"
#include "sim/scheduler.hpp"

namespace pd::rdma {

class Rnic;

/// The RDMA fabric: a switch plus the registry mapping node ids to RNICs
/// (the simulation analog of the subnet manager). One per simulated
/// cluster; owning it per-experiment keeps tests isolated.
class RdmaNetwork {
 public:
  explicit RdmaNetwork(sim::Scheduler& sched) : sched_(sched), switch_(sched) {}

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] fabric::Switch& fabric() { return switch_; }
  Rnic& rnic(NodeId node);

 private:
  friend class Rnic;
  void register_rnic(NodeId node, Rnic* rnic);
  void unregister_rnic(NodeId node);

  sim::Scheduler& sched_;
  fabric::Switch switch_;
  std::unordered_map<NodeId, Rnic*> rnics_;
};

struct RnicCounters {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t writes = 0;
  std::uint64_t atomics = 0;
  std::uint64_t rnr_events = 0;      ///< receiver-not-ready stalls
  std::uint64_t cache_miss_wrs = 0;  ///< WRs penalized by QP-cache overflow
  Bytes payload_bytes = 0;
};

class Rnic {
 public:
  Rnic(RdmaNetwork& net, NodeId node, mem::MemoryDomain& host_mem);
  ~Rnic();

  Rnic(const Rnic&) = delete;
  Rnic& operator=(const Rnic&) = delete;

  /// Register a tenant pool as an RDMA memory region. Requires the pool to
  /// have been exported for RDMA (doca_mmap_export_rdma, §3.4.2).
  void register_memory(PoolId pool);
  [[nodiscard]] bool memory_registered(PoolId pool) const;

  /// Create an RC QP owned by `tenant` (not yet connected).
  QueuePair& create_qp(TenantId tenant);
  QueuePair& qp(QpId id);

  /// Post a receive buffer to `tenant`'s shared RQ. Ownership of the buffer
  /// must already be with this RNIC's actor, and its pool registered.
  void post_srq_recv(TenantId tenant, const mem::BufferDescriptor& buffer);
  [[nodiscard]] std::size_t srq_depth(TenantId tenant) const;

  /// Node-wide CQ (§3.3: all RCQPs share a single CQ).
  CompletionQueue& cq() { return cq_; }

  /// One-sided write arrival hook: the receiver-side engine registers a
  /// monitor per pool (its FaRM-style canary poller). Without a monitor,
  /// writes land silently — exactly the "receiver-oblivious" property.
  using WriteMonitor =
      std::function<void(const mem::BufferDescriptor&, std::uint32_t len)>;
  void set_write_monitor(PoolId pool, WriteMonitor monitor);

  /// Host-exposed atomic words for remote CAS (distributed locks).
  void set_atomic_word(std::uint64_t addr, std::uint64_t value);
  [[nodiscard]] std::uint64_t atomic_word(std::uint64_t addr) const;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] RdmaNetwork& network() { return net_; }
  [[nodiscard]] mem::MemoryDomain& host_mem() { return host_mem_; }
  [[nodiscard]] const RnicCounters& counters() const { return counters_; }
  [[nodiscard]] int active_qps() const { return active_qps_; }

 private:
  friend class QueuePair;
  friend class ConnectionManager;
  friend void connect_qps(QueuePair& a, QueuePair& b,
                          std::function<void()> done);

  /// Sender-side execution of a posted WR.
  void execute(QueuePair& qp, const WorkRequest& wr);
  /// Per-WR NIC processing time including QP-cache effects.
  sim::Duration wr_overhead();

  /// Receiver-side arrival paths.
  void arrive_send(QpId dest_qp, TenantId tenant, std::uint32_t len,
                   std::vector<std::byte> payload);
  void deliver_to_srq(QpId dest_qp, TenantId tenant, std::uint32_t len,
                      std::vector<std::byte> payload);
  void deliver_into(mem::BufferDescriptor buffer, QpId dest_qp,
                    TenantId tenant, std::uint32_t len,
                    std::vector<std::byte> payload);
  void arrive_write(const WorkRequest& wr, std::uint32_t len,
                    std::vector<std::byte> payload);
  void arrive_cas(NodeId from, QpId from_qp, WorkRequest wr);

  sim::Scheduler& sched_;
  RdmaNetwork& net_;
  NodeId node_;
  mem::MemoryDomain& host_mem_;
  CompletionQueue cq_;

  std::unordered_map<QpId, std::unique_ptr<QueuePair>> qps_;
  std::uint32_t next_qp_ = 1;
  int active_qps_ = 0;

  std::unordered_map<PoolId, bool> registered_;
  std::unordered_map<TenantId, std::deque<mem::BufferDescriptor>> srqs_;
  /// Messages that hit an empty SRQ wait here (RNR retry behaviour).
  struct PendingRecv {
    QpId dest_qp;
    std::uint32_t len;
    std::vector<std::byte> payload;
  };
  std::unordered_map<TenantId, std::deque<PendingRecv>> rnr_queues_;

  std::unordered_map<PoolId, WriteMonitor> write_monitors_;
  std::unordered_map<std::uint64_t, std::uint64_t> atomic_words_;

  RnicCounters counters_;
};

/// Establish an RC connection between two QPs on different nodes. Costs the
/// connection-setup latency (tens of ms, §3.3); `done` fires when both ends
/// reach kInactive (established, shadow state).
void connect_qps(QueuePair& a, QueuePair& b, std::function<void()> done);

}  // namespace pd::rdma
