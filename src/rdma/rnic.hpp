// RNIC model: the ConnectX-6-class NIC integrated into each Bluefield DPU.
//
// Executes WRs with per-WR processing cost, line-rate DMA (payload bytes
// actually move between the two nodes' buffer pools — the "hardware copy"
// that zero-copy permits), QP-cache thrashing beyond a bounded active set,
// per-tenant shared receive queues, and RNR handling when a tenant's SRQ
// underruns.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "mem/memory_domain.hpp"
#include "rdma/qp.hpp"
#include "rdma/verbs.hpp"
#include "sim/scheduler.hpp"

namespace pd::rdma {

class Rnic;

/// A small unreliable control frame (the simulation analog of a UD
/// datagram): the reliability layer's ACK/NACK path. Datagrams ride the
/// same fabric links as data frames, so an injected link fault loses acks
/// exactly like it loses payloads.
struct Datagram {
  enum class Kind : std::uint8_t { kAck, kNack };
  Kind kind = Kind::kAck;
  std::uint64_t seq = 0;
};

/// Wire size of a control datagram (payload; frame overhead is added by
/// the fabric like for any frame).
inline constexpr Bytes kDatagramBytes = 16;

/// The RDMA fabric: a switch plus the registry mapping node ids to RNICs
/// (the simulation analog of the subnet manager). One per simulated
/// cluster; owning it per-experiment keeps tests isolated.
class RdmaNetwork {
 public:
  explicit RdmaNetwork(sim::Scheduler& sched) : sched_(sched), switch_(sched) {}

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] fabric::Switch& fabric() { return switch_; }

  /// Minimum fabric latency between two nodes (per-pair: a cross-leaf pair
  /// pays the spine detour on top of the flat lookahead). Control-plane
  /// posts that bypass Switch::send must respect this, not the flat bound.
  [[nodiscard]] sim::Duration min_path_latency(NodeId from, NodeId to) const {
    return switch_.min_path_latency(from, to);
  }

  /// Sharded mode: pin `node` (its RNIC, fabric port, and every event they
  /// schedule) to a specific scheduler shard. Must run before the node's
  /// Rnic is constructed; unpinned nodes stay on the shared scheduler.
  void set_node_scheduler(NodeId node, sim::Scheduler& sched);
  /// Scheduler owning `node` (the shared scheduler unless pinned).
  [[nodiscard]] sim::Scheduler& scheduler_for(NodeId node);

  /// Install the cross-shard delivery hook (forwarded to the fabric switch;
  /// see fabric::Switch::set_remote_post). Installing it marks the network
  /// sharded.
  void set_remote_post(fabric::Switch::RemotePost post);
  [[nodiscard]] bool sharded() const { return remote_post_ != nullptr; }
  /// Run `fn` at absolute simulated time `t` on the shard owning `node`
  /// (plain local schedule when not sharded).
  void post_to_node(NodeId node, sim::TimePoint t, sim::EventFn fn);

  /// Nodes with a registered RNIC, sorted by id — a deterministic
  /// iteration order for fault plans regardless of hash-map layout.
  [[nodiscard]] std::vector<NodeId> rnic_nodes() const;
  Rnic& rnic(NodeId node);
  [[nodiscard]] bool has_rnic(NodeId node) const {
    return rnics_.count(node) != 0;
  }

  /// Send an unreliable control datagram. Delivery is best-effort: a
  /// down/lossy port silently eats it, and an unregistered handler at
  /// arrival time (receiver crashed) drops it.
  using DatagramHandler = std::function<void(NodeId from, const Datagram&)>;
  void set_datagram_handler(NodeId node, DatagramHandler handler);
  void send_datagram(NodeId from, NodeId to, const Datagram& d);

  /// Fail-stop a node's RDMA attachment: every established/connecting QP
  /// on the node and every peer QP pointing at it transitions to kError
  /// (the peers' RC retry counters exceed while the node is dark).
  void fail_node_qps(NodeId node);

 private:
  friend class Rnic;
  void register_rnic(NodeId node, Rnic* rnic);
  void unregister_rnic(NodeId node);

  sim::Scheduler& sched_;
  fabric::Switch switch_;
  std::unordered_map<NodeId, Rnic*> rnics_;
  std::unordered_map<NodeId, DatagramHandler> datagram_handlers_;
  std::unordered_map<NodeId, sim::Scheduler*> node_scheds_;
  fabric::Switch::RemotePost remote_post_;
};

struct RnicCounters {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;       ///< one-sided READs initiated from here
  std::uint64_t atomics = 0;     ///< CAS WRs initiated from here
  std::uint64_t fetch_adds = 0;  ///< FAA WRs initiated from here
  std::uint64_t rnr_events = 0;      ///< receiver-not-ready stalls
  std::uint64_t rnr_drops = 0;       ///< arrivals shed at a full RNR queue
  std::uint64_t cache_miss_wrs = 0;  ///< WRs penalized by QP-cache overflow
  std::uint64_t datagrams = 0;       ///< control datagrams sent
  /// Inbound one-sided READ/WRITE rejected by this NIC's MR permission
  /// check (rkey denial; surfaced at the initiator as an error CQE).
  std::uint64_t access_errors = 0;
  /// Inbound CAS/FAA rejected: unmapped atomic word or MR without
  /// kMrRemoteAtomic.
  std::uint64_t atomic_access_errors = 0;
  Bytes payload_bytes = 0;
};

class Rnic {
 public:
  Rnic(RdmaNetwork& net, NodeId node, mem::MemoryDomain& host_mem);
  ~Rnic();

  Rnic(const Rnic&) = delete;
  Rnic& operator=(const Rnic&) = delete;

  /// Register a tenant pool as an RDMA memory region with the given access
  /// flags (OR of kMr*). Requires the pool to have been exported for RDMA
  /// (doca_mmap_export_rdma, §3.4.2). The default grants full remote
  /// access — Palladium's unified pools are symmetric peers; restrict to
  /// kMrLocal for scratch regions that must never be a one-sided target.
  void register_memory(PoolId pool, std::uint8_t access = kMrRemoteAll);
  [[nodiscard]] bool memory_registered(PoolId pool) const;
  /// Access flags of a registered pool (0 when unregistered/foreign).
  [[nodiscard]] std::uint8_t mr_access(PoolId pool) const;

  /// Create an RC QP owned by `tenant` (not yet connected).
  QueuePair& create_qp(TenantId tenant);
  QueuePair& qp(QpId id);

  /// Post a receive buffer to `tenant`'s shared RQ. Ownership of the buffer
  /// must already be with this RNIC's actor, and its pool registered.
  void post_srq_recv(TenantId tenant, const mem::BufferDescriptor& buffer);
  [[nodiscard]] std::size_t srq_depth(TenantId tenant) const;

  /// Fault injection: empty `tenant`'s SRQ, releasing the posted buffers
  /// back to their pools. Returns the number drained. Arrivals during the
  /// resulting underrun take the RNR path until the replenisher refills.
  std::size_t drain_srq(TenantId tenant);
  /// drain_srq across every tenant with a posted SRQ.
  std::size_t drain_all_srqs();

  /// Observer for fault-injected drains: whoever accounts posted receive
  /// buffers (the engine's ReceiveBufferRegistry) registers here so a drain
  /// shows up as a replenishable deficit instead of a silent leak.
  using DrainListener =
      std::function<void(TenantId, const mem::BufferDescriptor&)>;
  void set_drain_listener(DrainListener listener) {
    drain_listener_ = std::move(listener);
  }

  /// Bound on messages parked per tenant awaiting SRQ buffers (RNR state).
  /// Beyond it arrivals are dropped and a NACK datagram is returned to the
  /// sender so it can shed instead of burning retransmit timers.
  void set_rnr_queue_limit(std::size_t limit) { rnr_queue_limit_ = limit; }

  /// Fault injection: fail every QP on this RNIC that is established or
  /// connecting (optionally only those whose remote is `peer`).
  void fail_qps(NodeId peer = NodeId{});

  /// Node-wide CQ (§3.3: all RCQPs share a single CQ).
  CompletionQueue& cq() { return cq_; }

  /// One-sided write arrival hook: the receiver-side engine registers a
  /// monitor per pool (its FaRM-style canary poller). Without a monitor,
  /// writes land silently — exactly the "receiver-oblivious" property.
  using WriteMonitor =
      std::function<void(const mem::BufferDescriptor&, std::uint32_t len)>;
  void set_write_monitor(PoolId pool, WriteMonitor monitor);

  /// Host-exposed atomic words for remote CAS/FAA (distributed locks,
  /// ownership tokens, version counters). An optional guard pool ties the
  /// word to an MR: remote atomics are then rejected unless that MR grants
  /// kMrRemoteAtomic.
  void set_atomic_word(std::uint64_t addr, std::uint64_t value,
                       PoolId guard = PoolId{});
  [[nodiscard]] std::uint64_t atomic_word(std::uint64_t addr) const;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] RdmaNetwork& network() { return net_; }
  /// The scheduler shard this RNIC's events run on (node-local in sharded
  /// mode, the cluster scheduler otherwise).
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] mem::MemoryDomain& host_mem() { return host_mem_; }
  [[nodiscard]] const RnicCounters& counters() const { return counters_; }
  [[nodiscard]] int active_qps() const { return active_qps_; }

  /// QP census by state — the control-plane churn series the flight
  /// recorder samples (rebuild storms show as an error/connecting bulge).
  struct QpStateCounts {
    std::size_t reset = 0;
    std::size_t connecting = 0;
    std::size_t inactive = 0;
    std::size_t active = 0;
    std::size_t error = 0;
  };
  [[nodiscard]] QpStateCounts qp_state_counts() const;
  /// WRs posted but not yet completion-harvested, summed over every QP
  /// (the node's aggregate send-queue depth).
  [[nodiscard]] int sq_outstanding() const;
  /// Arrivals parked for `tenant` awaiting SRQ buffers (RNR state).
  [[nodiscard]] std::size_t rnr_depth(TenantId tenant) const;

 private:
  friend class QueuePair;
  friend class ConnectionManager;
  friend class RdmaNetwork;
  friend void connect_qps(QueuePair& a, QueuePair& b,
                          std::function<void()> done);

  /// Sender-side execution of a posted WR.
  void execute(QueuePair& qp, const WorkRequest& wr);
  /// Per-WR NIC processing time including QP-cache effects.
  sim::Duration wr_overhead();

  /// Receiver-side arrival paths.
  void arrive_send(QpId dest_qp, TenantId tenant, std::uint32_t len,
                   std::vector<std::byte> payload);
  void deliver_to_srq(QpId dest_qp, TenantId tenant, std::uint32_t len,
                      std::vector<std::byte> payload);
  void deliver_into(mem::BufferDescriptor buffer, QpId dest_qp,
                    TenantId tenant, std::uint32_t len,
                    std::vector<std::byte> payload);
  void arrive_write(NodeId from, QpId from_qp, const WorkRequest& wr,
                    std::uint32_t len, std::vector<std::byte> payload);
  void arrive_read(NodeId from, QpId from_qp, WorkRequest wr);
  void arrive_atomic(NodeId from, QpId from_qp, WorkRequest wr);
  /// READ response landing back at the initiator: DMA the fetched bytes
  /// into the WR's local buffer and raise the success CQE.
  void complete_read(QpId qp_id, const WorkRequest& wr,
                     std::vector<std::byte> payload);
  /// Push a remote-access error CQE at this (initiator) RNIC for a failed
  /// one-sided WR and release the SQ slot.
  void complete_error(QpId qp_id, const WorkRequest& wr, bool outstanding);

  /// Resource-ledger charge for NIC serialization work (ISSUE 10): `ns` of
  /// WR/CQE processing and `bytes` of payload DMA attributed to `tenant`.
  /// One predicted branch when no enabled ledger is installed.
  void ledger_nic(std::int64_t tenant, sim::Duration ns, std::uint64_t bytes);

  sim::Scheduler& sched_;
  RdmaNetwork& net_;
  NodeId node_;
  mem::MemoryDomain& host_mem_;
  CompletionQueue cq_;
  /// Ledger resource name, e.g. "node1/rnic".
  std::string ledger_name_;

  std::unordered_map<QpId, std::unique_ptr<QueuePair>> qps_;
  std::uint32_t next_qp_ = 1;
  int active_qps_ = 0;

  /// Registered-MR flags, flat-indexed by PoolId value (checked on every
  /// WR post and SRQ post — a hash lookup here shows up in profiles).
  std::vector<char> registered_;
  std::unordered_map<TenantId, std::deque<mem::BufferDescriptor>> srqs_;
  /// Messages that hit an empty SRQ wait here (RNR retry behaviour).
  struct PendingRecv {
    QpId dest_qp;
    std::uint32_t len;
    std::vector<std::byte> payload;
  };
  std::unordered_map<TenantId, std::deque<PendingRecv>> rnr_queues_;
  std::size_t rnr_queue_limit_ = 64;

  DrainListener drain_listener_;
  std::unordered_map<PoolId, WriteMonitor> write_monitors_;
  struct AtomicWord {
    std::uint64_t value = 0;
    PoolId guard{};  ///< valid() => remote atomics need kMrRemoteAtomic here
  };
  std::unordered_map<std::uint64_t, AtomicWord> atomic_words_;

  RnicCounters counters_;
};

/// Establish an RC connection between two QPs on different nodes. Costs the
/// connection-setup latency (tens of ms, §3.3); `done` fires when both ends
/// reach kInactive (established, shadow state).
void connect_qps(QueuePair& a, QueuePair& b, std::function<void()> done);

}  // namespace pd::rdma
