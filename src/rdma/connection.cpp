#include "rdma/connection.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"

namespace pd::rdma {

ConnectionManager::ConnectionManager(Rnic& local, int max_active)
    : net_(local.network()), local_(local), max_active_(max_active) {
  PD_CHECK(max_active_ > 0, "active-QP cap must be positive");
}

void ConnectionManager::establish(NodeId remote, TenantId tenant, int count,
                                  std::function<void()> ready) {
  PD_CHECK(count > 0, "establish needs at least one connection");
  Rnic& peer = net_.rnic(remote);
  auto remaining = std::make_shared<int>(count);
  auto done = std::make_shared<std::function<void()>>(std::move(ready));
  for (int i = 0; i < count; ++i) {
    QueuePair& a = local_.create_qp(tenant);
    QueuePair& b = peer.create_qp(tenant);
    pools_[PoolKey{remote, tenant}].push_back(&a);
    ++stats_.establishments;
    connect_qps(a, b, [remaining, done] {
      if (--*remaining == 0 && *done) (*done)();
    });
  }
}

std::size_t ConnectionManager::pool_size(NodeId remote, TenantId tenant) const {
  auto it = pools_.find(PoolKey{remote, tenant});
  return it == pools_.end() ? 0 : it->second.size();
}

std::size_t ConnectionManager::healthy_count(NodeId remote,
                                             TenantId tenant) const {
  auto it = pools_.find(PoolKey{remote, tenant});
  if (it == pools_.end()) return 0;
  std::size_t n = 0;
  for (const QueuePair* qp : it->second) {
    if (qp->state() != QpState::kError) ++n;
  }
  return n;
}

int ConnectionManager::active_count() const { return local_.active_qps(); }

void ConnectionManager::send(NodeId remote, TenantId tenant,
                             const WorkRequest& wr) {
  auto it = pools_.find(PoolKey{remote, tenant});
  PD_CHECK(it != pools_.end() && !it->second.empty(),
           "no RC connections to node " << remote << " for tenant " << tenant);
  auto& pool = it->second;
  ++stats_.sends;

  // Least-congested active QP (§3.2 TX stage).
  QueuePair* best_active = nullptr;
  for (QueuePair* qp : pool) {
    if (qp->state() == QpState::kActive &&
        (best_active == nullptr || qp->outstanding() < best_active->outstanding())) {
      best_active = qp;
    }
  }
  if (best_active != nullptr) {
    last_active_[best_active->id()] = ++activation_clock_;
    best_active->post_send(wr);
    return;
  }

  // A QP already mid-activation? Queue behind it.
  for (QueuePair* qp : pool) {
    auto pending = pending_.find(qp->id());
    if (pending != pending_.end()) {
      pending->second.push_back(wr);
      return;
    }
  }

  // Reactivate a shadow QP.
  QueuePair* shadow = nullptr;
  bool connecting = false;
  for (QueuePair* qp : pool) {
    if (qp->state() == QpState::kInactive) {
      shadow = qp;
      break;
    }
    if (qp->state() == QpState::kConnecting) connecting = true;
  }
  if (shadow == nullptr && !connecting) {
    // Every connection in the pool is broken (fabric fault / remote QP
    // errors): rebuild the pool and queue the WR behind the handshake.
    ++stats_.reestablishments;
    const int count = static_cast<int>(pool.size());
    auto deferred = std::make_shared<WorkRequest>(wr);
    establish(remote, tenant, count > 0 ? count : 1,
              [this, remote, tenant, deferred] {
                send(remote, tenant, *deferred);
              });
    return;
  }
  PD_CHECK(shadow != nullptr,
           "no established QP available (pool still connecting)");
  pending_[shadow->id()].push_back(wr);
  activate(*shadow);
}

void ConnectionManager::activate(QueuePair& qp) {
  ++stats_.activations;
  qp.activate([this, &qp] {
    last_active_[qp.id()] = ++activation_clock_;
    enforce_active_cap();
    auto it = pending_.find(qp.id());
    if (it != pending_.end()) {
      auto wrs = std::move(it->second);
      pending_.erase(it);
      for (const auto& wr : wrs) qp.post_send(wr);
    }
  });
}

void ConnectionManager::enforce_active_cap() {
  while (local_.active_qps_ > max_active_) {
    // Deactivate the least-recently-used idle active QP.
    QueuePair* victim = nullptr;
    std::uint64_t oldest = activation_clock_ + 1;
    for (auto& [key, pool] : pools_) {
      for (QueuePair* qp : pool) {
        if (qp->state() == QpState::kActive && qp->outstanding() == 0) {
          const auto stamp_it = last_active_.find(qp->id());
          const std::uint64_t stamp =
              stamp_it == last_active_.end() ? 0 : stamp_it->second;
          if (stamp < oldest) {
            oldest = stamp;
            victim = qp;
          }
        }
      }
    }
    if (victim == nullptr) return;  // everything busy: accept cache misses
    victim->deactivate();
    ++stats_.deactivations;
  }
}

}  // namespace pd::rdma
