#include "rdma/connection.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "common/check.hpp"
#include "obs/hub.hpp"

namespace pd::rdma {
namespace {

/// Retry cadence when a send races an externally-driven handshake (initial
/// establish still in flight) — just poll again shortly after.
constexpr sim::Duration kConnectingPollNs = 50'000;

}  // namespace

ConnectionManager::ConnectionManager(Rnic& local, int max_active)
    : net_(local.network()), local_(local), max_active_(max_active) {
  PD_CHECK(max_active_ > 0, "active-QP cap must be positive");
}

void ConnectionManager::establish(NodeId remote, TenantId tenant, int count,
                                  std::function<void()> ready) {
  PD_CHECK(count > 0, "establish needs at least one connection");
  auto remaining = std::make_shared<int>(count);
  auto done = std::make_shared<std::function<void()>>(std::move(ready));

  if (net_.sharded()) {
    // Sharded handshake: the peer's QP must be created and finalized on the
    // peer's own shard, so the request and the answering QP id travel
    // through the cross-shard mailboxes (one lookahead hop each way). Both
    // ends still finalize at t0 + kRcConnectNs — the two sub-microsecond
    // mailbox hops vanish under the tens-of-ms handshake cost, keeping
    // completion times identical to the legacy synchronous path.
    const sim::TimePoint t0 = local_.scheduler().now();
    // Per-pair: a cross-leaf peer is a longer hop, and the PDES lookahead
    // matrix rejects posts faster than the pair's minimum path latency.
    const sim::Duration hop =
        net_.min_path_latency(local_.node(), remote);
    Rnic* origin = &local_;
    Rnic* peer = &net_.rnic(remote);
    for (int i = 0; i < count; ++i) {
      QueuePair& a = local_.create_qp(tenant);
      a.remote_node_ = remote;
      a.state_ = QpState::kConnecting;
      pools_[PoolKey{remote, tenant}].push_back(&a);
      ++stats_.establishments;
      net_.post_to_node(remote, t0 + hop, [this, origin, peer, tenant, t0,
                                           hop, a_id = a.id(), remaining,
                                           done] {
        QueuePair& b = peer->create_qp(tenant);
        b.remote_node_ = origin->node();
        b.remote_qp_ = a_id;
        b.state_ = QpState::kConnecting;
        peer->scheduler().schedule_at(t0 + cost::kRcConnectNs, [&b] {
          if (b.state_ == QpState::kConnecting) b.state_ = QpState::kInactive;
        });
        net_.post_to_node(
            origin->node(), t0 + 2 * hop,
            [origin, a_id, b_id = b.id(), t0, remaining, done] {
              QueuePair& a = origin->qp(a_id);
              a.remote_qp_ = b_id;
              origin->scheduler().schedule_at(
                  t0 + cost::kRcConnectNs, [&a, remaining, done] {
                    if (a.state_ == QpState::kConnecting) {
                      a.state_ = QpState::kInactive;
                    }
                    if (--*remaining == 0 && *done) (*done)();
                  });
            });
      });
    }
    return;
  }

  Rnic& peer = net_.rnic(remote);
  for (int i = 0; i < count; ++i) {
    QueuePair& a = local_.create_qp(tenant);
    QueuePair& b = peer.create_qp(tenant);
    pools_[PoolKey{remote, tenant}].push_back(&a);
    ++stats_.establishments;
    connect_qps(a, b, [remaining, done] {
      if (--*remaining == 0 && *done) (*done)();
    });
  }
}

std::size_t ConnectionManager::pool_size(NodeId remote, TenantId tenant) const {
  auto it = pools_.find(PoolKey{remote, tenant});
  return it == pools_.end() ? 0 : it->second.size();
}

std::size_t ConnectionManager::healthy_count(NodeId remote,
                                             TenantId tenant) const {
  auto it = pools_.find(PoolKey{remote, tenant});
  if (it == pools_.end()) return 0;
  std::size_t n = 0;
  for (const QueuePair* qp : it->second) {
    if (qp->state() != QpState::kError) ++n;
  }
  return n;
}

int ConnectionManager::active_count() const { return local_.active_qps(); }

void ConnectionManager::send(NodeId remote, TenantId tenant,
                             const WorkRequest& wr) {
  const PoolKey key{remote, tenant};
  auto it = pools_.find(key);
  PD_CHECK(it != pools_.end() && !it->second.empty(),
           "no RC connections to node " << remote << " for tenant " << tenant);
  auto& pool = it->second;
  ++stats_.sends;

  // Pool rebuild in flight after a fault: park the WR; it replays through
  // send() (and thus a fresh health check) once the rebuild lands.
  if (auto rb = rebuilds_.find(key); rb != rebuilds_.end()) {
    rb->second.deferred.push_back(wr);
    return;
  }

  // Least-congested active QP (§3.2 TX stage).
  QueuePair* best_active = nullptr;
  for (QueuePair* qp : pool) {
    if (qp->state() == QpState::kActive &&
        (best_active == nullptr || qp->outstanding() < best_active->outstanding())) {
      best_active = qp;
    }
  }
  if (best_active != nullptr) {
    last_active_[best_active->id()] = ++activation_clock_;
    best_active->post_send(wr);
    return;
  }

  // A (healthy) QP already mid-activation? Queue behind it.
  for (QueuePair* qp : pool) {
    if (qp->state() == QpState::kError) continue;
    auto pending = pending_.find(qp->id());
    if (pending != pending_.end()) {
      pending->second.push_back(wr);
      return;
    }
  }

  // Reactivate a shadow QP.
  QueuePair* shadow = nullptr;
  bool connecting = false;
  for (QueuePair* qp : pool) {
    if (qp->state() == QpState::kInactive) {
      shadow = qp;
      break;
    }
    if (qp->state() == QpState::kConnecting) connecting = true;
  }
  if (shadow != nullptr) {
    pending_[shadow->id()].push_back(wr);
    activate(*shadow);
    return;
  }
  if (connecting) {
    // An externally-driven handshake (initial establish) is still in
    // flight; retry once it has had a chance to land.
    local_.scheduler().schedule_after(kConnectingPollNs, [this, remote, tenant,
                                                          wr] {
      send(remote, tenant, wr);
    });
    return;
  }

  // Every connection in the pool is broken (fabric fault / remote QP
  // errors): rebuild the pool with backoff and park the WR behind it.
  start_rebuild(key, wr);
}

void ConnectionManager::start_rebuild(PoolKey key, const WorkRequest& wr) {
  ++stats_.reestablishments;
  Rebuild& rb = rebuilds_[key];
  rb.deferred.push_back(wr);
  rb.started = local_.scheduler().now();
  run_rebuild(key);
}

sim::Duration ConnectionManager::backoff_delay(int attempt) {
  sim::Duration d = backoff_.base_ns;
  for (int i = 1; i < attempt && d < backoff_.cap_ns; ++i) d *= 2;
  d = std::min(d, backoff_.cap_ns);
  // Jitter in [0.5, 1.5): desynchronizes the retry storms that lock-step
  // backoff produces after a correlated fault.
  return static_cast<sim::Duration>(
      static_cast<double>(d) * (0.5 + backoff_rng_.next_double()));
}

void ConnectionManager::run_rebuild(PoolKey key) {
  auto& pool = pools_[key];
  // Drop the broken QPs from the pool (the RNIC still owns the objects;
  // in-flight completions on them drain harmlessly) so the pool does not
  // grow without bound across rebuild cycles. Each broken connection is
  // replaced one-for-one.
  const std::size_t before = pool.size();
  std::erase_if(pool, [](const QueuePair* qp) {
    return qp->state() == QpState::kError;
  });
  const int count = std::max<int>(1, static_cast<int>(before - pool.size()));
  establish(key.remote, key.tenant, count, [this, key] { on_rebuilt(key); });
}

void ConnectionManager::on_rebuilt(PoolKey key) {
  auto it = rebuilds_.find(key);
  if (it == rebuilds_.end()) return;
  Rebuild& rb = it->second;
  if (healthy_count(key.remote, key.tenant) == 0) {
    // A second fault landed during the handshake itself; retry with
    // exponential backoff + jitter rather than hammering the peer.
    ++rb.attempt;
    ++stats_.rebuild_retries;
    local_.scheduler().schedule_after(backoff_delay(rb.attempt),
                                      [this, key] { run_rebuild(key); });
    return;
  }
  if (auto* h = obs::hub()) {
    h->registry
        .histogram("conn.qp_reestablish_ns",
                   "node=" + std::to_string(local_.node().value()))
        .record(local_.scheduler().now() - rb.started);
  }
  auto wrs = std::move(rb.deferred);
  rebuilds_.erase(it);
  // Replay through send(): each WR re-runs QP selection against the fresh
  // pool (never blindly into a QP that may have errored again).
  for (const auto& wr : wrs) send(key.remote, key.tenant, wr);
}

void ConnectionManager::activate(QueuePair& qp) {
  ++stats_.activations;
  qp.activate([this, &qp] {
    std::vector<WorkRequest> wrs;
    if (auto it = pending_.find(qp.id()); it != pending_.end()) {
      wrs = std::move(it->second);
      pending_.erase(it);
    }
    if (qp.state() != QpState::kActive) {
      // A fault broke the QP while activation was in flight. Re-route the
      // deferred WRs through send() instead of replaying into an error QP.
      for (const auto& wr : wrs) send(qp.remote_node(), qp.tenant(), wr);
      return;
    }
    last_active_[qp.id()] = ++activation_clock_;
    enforce_active_cap();
    for (const auto& wr : wrs) qp.post_send(wr);
  });
}

void ConnectionManager::enforce_active_cap() {
  while (local_.active_qps_ > max_active_) {
    // Deactivate the least-recently-used idle active QP.
    QueuePair* victim = nullptr;
    std::uint64_t oldest = activation_clock_ + 1;
    for (auto& [key, pool] : pools_) {
      for (QueuePair* qp : pool) {
        if (qp->state() == QpState::kActive && qp->outstanding() == 0) {
          const auto stamp_it = last_active_.find(qp->id());
          const std::uint64_t stamp =
              stamp_it == last_active_.end() ? 0 : stamp_it->second;
          if (stamp < oldest) {
            oldest = stamp;
            victim = qp;
          }
        }
      }
    }
    if (victim == nullptr) return;  // everything busy: accept cache misses
    victim->deactivate();
    ++stats_.deactivations;
  }
}

}  // namespace pd::rdma
