// Deficit Weighted Round Robin scheduler (Shreedhar & Varghese [79]),
// used by the DNE to share RNIC bandwidth between tenants (§3.3).
//
// Real algorithm, not a model: per-tenant FIFO queues, a quantum
// proportional to the tenant's weight credited on each round-robin visit,
// and a deficit counter spent per dequeued item. With unit item cost this
// yields throughput shares proportional to weights whenever tenants are
// backlogged — exactly Fig. 15's property.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace pd::core {

template <typename Item>
class DwrrScheduler {
 public:
  /// `quantum_base`: credit per weight unit per round (in the same cost
  /// units used by enqueue; use 1 for request-count fairness).
  explicit DwrrScheduler(std::uint32_t quantum_base = 1)
      : quantum_base_(quantum_base) {
    PD_CHECK(quantum_base_ > 0, "quantum must be positive");
  }

  /// Register a tenant with its weight. Must precede enqueue.
  void add_tenant(TenantId tenant, std::uint32_t weight) {
    PD_CHECK(weight > 0, "tenant weight must be positive");
    PD_CHECK(queues_.find(tenant) == queues_.end(),
             "tenant " << tenant << " already registered");
    queues_.emplace(tenant, Queue{weight, 0, {}});
    order_.push_back(tenant);
  }

  void remove_tenant(TenantId tenant) {
    auto it = queues_.find(tenant);
    PD_CHECK(it != queues_.end(), "unknown tenant " << tenant);
    PD_CHECK(it->second.items.empty(), "removing tenant with queued items");
    queues_.erase(it);
    const auto pos = static_cast<std::size_t>(
        std::find(order_.begin(), order_.end(), tenant) - order_.begin());
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
    // Keep the cursor on the tenant it was pointing at: erasing an entry
    // ordered before it shifts every later index left by one, and leaving
    // cursor_ unadjusted would silently skip that tenant's turn (with its
    // visited_this_round flag going stale — it would also miss its next
    // quantum top-up).
    if (pos < cursor_) --cursor_;
    if (cursor_ >= order_.size()) cursor_ = 0;
  }

  [[nodiscard]] bool has_tenant(TenantId tenant) const {
    return queues_.find(tenant) != queues_.end();
  }

  /// Deregister `tenant` mid-round, handing back whatever it still has
  /// queued so the caller can complete each item explicitly (never silent
  /// loss). Items come back in FIFO order; unspent deficit credit is
  /// discarded with the queue and the cursor keeps pointing at the tenant
  /// it was on (the PR 3 remove_tenant fix does the index surgery).
  [[nodiscard]] std::vector<Item> drain_tenant(TenantId tenant) {
    auto it = queues_.find(tenant);
    PD_CHECK(it != queues_.end(), "unknown tenant " << tenant);
    std::vector<Item> out;
    out.reserve(it->second.items.size());
    for (Entry& e : it->second.items) out.push_back(std::move(e.item));
    pending_ -= it->second.items.size();
    it->second.items.clear();
    remove_tenant(tenant);
    return out;
  }

  /// Enqueue an item with `size` cost units (1 = per-request fairness).
  void enqueue(TenantId tenant, Item item, std::uint32_t size = 1) {
    auto it = queues_.find(tenant);
    PD_CHECK(it != queues_.end(), "enqueue for unknown tenant " << tenant);
    PD_CHECK(size > 0, "item size must be positive");
    it->second.items.push_back(Entry{std::move(item), size});
    ++pending_;
  }

  /// Dequeue the next item per DWRR order; nullopt when all queues empty.
  std::optional<Item> dequeue() {
    if (pending_ == 0) return std::nullopt;
    // At most two passes over the tenants are needed when every queue's
    // head exceeds its deficit (each pass tops deficits up by one quantum).
    for (std::size_t scanned = 0; scanned < 2 * order_.size(); ++scanned) {
      Queue& q = queues_.at(order_[cursor_]);
      if (q.items.empty()) {
        q.deficit = 0;  // empty queues hold no credit (standard DRR)
        advance();
        continue;
      }
      if (!q.visited_this_round) {
        q.deficit += q.weight * quantum_base_;
        q.visited_this_round = true;
      }
      if (q.items.front().size <= q.deficit) {
        Entry e = std::move(q.items.front());
        q.items.pop_front();
        q.deficit -= e.size;
        --pending_;
        if (q.items.empty()) q.deficit = 0;
        return std::move(e.item);
      }
      // Head too expensive this round: move on, credit persists.
      q.visited_this_round = false;
      advance();
    }
    // All heads exceeded even a fresh quantum (oversized items): serve the
    // current head anyway to guarantee progress.
    for (std::size_t i = 0; i < order_.size(); ++i) {
      Queue& q = queues_.at(order_[cursor_]);
      if (!q.items.empty()) {
        Entry e = std::move(q.items.front());
        q.items.pop_front();
        q.deficit = 0;
        --pending_;
        return std::move(e.item);
      }
      advance();
    }
    PD_UNREACHABLE("pending_ > 0 but no queued items");
  }

  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] std::size_t pending_for(TenantId tenant) const {
    auto it = queues_.find(tenant);
    return it == queues_.end() ? 0 : it->second.items.size();
  }
  [[nodiscard]] std::uint32_t weight_of(TenantId tenant) const {
    return queues_.at(tenant).weight;
  }
  /// Unspent deficit credit currently held by `tenant` (0 when unknown).
  /// A persistently high value with a backlogged queue means the tenant's
  /// head item exceeds its per-round quantum — the flight recorder
  /// samples this to make DWRR starvation visible on a timeline.
  [[nodiscard]] std::uint64_t deficit_of(TenantId tenant) const {
    auto it = queues_.find(tenant);
    return it == queues_.end() ? 0 : it->second.deficit;
  }

 private:
  struct Entry {
    Item item;
    std::uint32_t size;
  };
  struct Queue {
    std::uint32_t weight;
    std::uint64_t deficit;
    std::deque<Entry> items;
    bool visited_this_round = false;
  };

  void advance() {
    if (order_.empty()) return;
    queues_.at(order_[cursor_]).visited_this_round = false;
    cursor_ = (cursor_ + 1) % order_.size();
  }

  std::uint32_t quantum_base_;
  std::unordered_map<TenantId, Queue> queues_;
  std::vector<TenantId> order_;
  std::size_t cursor_ = 0;
  std::size_t pending_ = 0;
};

/// FCFS queue with the same interface — the no-isolation baseline the
/// paper contrasts in Fig. 15 (1).
template <typename Item>
class FcfsScheduler {
 public:
  void add_tenant(TenantId, std::uint32_t) {}
  void enqueue(TenantId, Item item, std::uint32_t = 1) {
    items_.push_back(std::move(item));
  }
  std::optional<Item> dequeue() {
    if (items_.empty()) return std::nullopt;
    Item item = std::move(items_.front());
    items_.pop_front();
    return item;
  }
  [[nodiscard]] std::size_t pending() const { return items_.size(); }

 private:
  std::deque<Item> items_;
};

}  // namespace pd::core
