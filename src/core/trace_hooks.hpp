// Baton-protocol tracing hooks for the data plane.
//
// Every stage that handles a message runs the same three-line protocol:
// close the span named by header.cur_span (opened by whoever handed us the
// message), open this stage's own span, and write the new id back into the
// in-buffer header so the next stage can close it. All hop spans parent to
// the root "request" span. The terminal consumer (load driver or ingress
// response handler) calls trace_finish to close both the in-flight hop and
// the root.
//
// All hooks are single-branch no-ops when no obs::Hub is installed or the
// message was not sampled, and none of them schedule events or charge
// simulated time -- tracing cannot perturb results.
#pragma once

#include <string_view>

#include "core/message.hpp"
#include "obs/hub.hpp"
#include "sim/time.hpp"

namespace pd::core {

/// Producer side: start a trace, stamping the context and the first hop span
/// (e.g. "ingress") into `h`. Caller must still write_header afterwards.
inline void trace_start(MessageHeader& h, std::string_view hop_name,
                        std::string_view track, sim::TimePoint now) {
  obs::Hub* hub = obs::hub();
  if (hub == nullptr) return;
  obs::TraceContext ctx = hub->tracer.start_trace(track, now);
  if (!ctx.sampled()) return;
  h.trace_id = ctx.trace_id;
  h.root_span = ctx.root_span;
  h.cur_span =
      hub->tracer.begin_span(ctx.trace_id, ctx.root_span, hop_name, track, now);
}

/// Hop: end h.cur_span, begin `name`, store the new id in `h`. Returns true
/// when the header changed -- the caller must write it back to the buffer so
/// the baton travels with the message.
inline bool trace_hop(MessageHeader& h, std::string_view name,
                      std::string_view track, sim::TimePoint now) {
  obs::Hub* hub = obs::hub();
  if (hub == nullptr || h.trace_id == 0) return false;
  hub->tracer.end_span(h.cur_span, now);
  h.cur_span =
      hub->tracer.begin_span(h.trace_id, h.root_span, name, track, now);
  return true;
}

/// Terminal consumer: close the in-flight hop span and the root span.
inline void trace_finish(const MessageHeader& h, sim::TimePoint now) {
  obs::Hub* hub = obs::hub();
  if (hub == nullptr || h.trace_id == 0) return;
  hub->tracer.end_span(h.cur_span, now);
  if (h.root_span != h.cur_span) hub->tracer.end_span(h.root_span, now);
}

}  // namespace pd::core
