// Receive Buffer Registry (§3.5.2): maps posted receive WRs to the tenant
// buffers handed to the RNIC, and tracks per-tenant CQE consumption so the
// DNE core thread can replenish the shared RQs.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "mem/descriptor.hpp"

namespace pd::core {

class ReceiveBufferRegistry {
 public:
  /// Record a buffer posted to a tenant's SRQ.
  void on_posted(TenantId tenant, const mem::BufferDescriptor& buffer) {
    const Key key{buffer.pool, buffer.index};
    PD_CHECK(posted_.emplace(key, tenant).second,
             "buffer " << buffer.index << " already registered");
    ++outstanding_[tenant];
  }

  /// A receive CQE consumed this buffer: validate and account it.
  void on_consumed(TenantId tenant, const mem::BufferDescriptor& buffer) {
    const Key key{buffer.pool, buffer.index};
    auto it = posted_.find(key);
    PD_CHECK(it != posted_.end(),
             "CQE for unregistered receive buffer " << buffer.index);
    PD_CHECK(it->second == tenant, "CQE tenant mismatch in RBR");
    posted_.erase(it);
    --outstanding_[tenant];
    ++consumed_[tenant];
  }

  /// A posted buffer left the SRQ without a CQE (fault-injected drain):
  /// forget it so the replenisher sees the deficit and re-posting the same
  /// slot after reallocation doesn't trip the double-post check.
  void on_dropped(TenantId tenant, const mem::BufferDescriptor& buffer) {
    const Key key{buffer.pool, buffer.index};
    auto it = posted_.find(key);
    PD_CHECK(it != posted_.end(),
             "drained buffer " << buffer.index << " was never posted");
    PD_CHECK(it->second == tenant, "drain tenant mismatch in RBR");
    posted_.erase(it);
    --outstanding_[tenant];
  }

  /// Buffers consumed since the last replenish cycle for `tenant` — the
  /// count the core thread reposts (shared-counter scheme, Fig. 7 red
  /// arrows). Resets the counter.
  std::uint64_t take_consumed(TenantId tenant) {
    auto it = consumed_.find(tenant);
    if (it == consumed_.end()) return 0;
    const std::uint64_t n = it->second;
    it->second = 0;
    return n;
  }

  [[nodiscard]] std::uint64_t outstanding(TenantId tenant) const {
    auto it = outstanding_.find(tenant);
    return it == outstanding_.end() ? 0 : it->second;
  }

 private:
  struct Key {
    PoolId pool;
    std::uint32_t index;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<PoolId>{}(k.pool) * 31 + k.index;
    }
  };

  std::unordered_map<Key, TenantId, KeyHash> posted_;
  std::unordered_map<TenantId, std::uint64_t> outstanding_;
  std::unordered_map<TenantId, std::uint64_t> consumed_;
};

}  // namespace pd::core
