// The inter-node data-plane interface shared by Palladium's network
// engines and the baseline systems (SPRIGHT, NightCore, FUYAO). The
// function runtime's I/O library talks to whichever implementation the
// cluster was assembled with — the experiments in §4.3 swap these.
#pragma once

#include "ipc/channel.hpp"
#include "core/routing.hpp"

namespace pd::core {

/// Reserved function id for an engine's own ingest socket (the SK_MSG /
/// Comch endpoint functions redirect descriptors to).
inline constexpr FunctionId kEngineSocket{0xFFFF0000};

class DataPlane {
 public:
  virtual ~DataPlane() = default;

  /// Hand a message (ownership included) to the engine for transmission to
  /// a function on another node. `src_core` is the calling function's core
  /// and is charged `ingest_cost()` for the channel enqueue; pass
  /// `precharged = true` when the caller already folded that cost into its
  /// own run-to-completion job.
  virtual void submit(FunctionId src, sim::Core& src_core,
                      const mem::BufferDescriptor& d,
                      bool precharged = false) = 0;

  /// Host-side CPU cost of handing one descriptor to this engine.
  [[nodiscard]] virtual sim::Duration ingest_cost() const = 0;

  /// Register a local function (of `tenant`) for inbound delivery.
  virtual void register_local_function(FunctionId fn, TenantId tenant,
                                       sim::Core& host_core,
                                       ipc::DescriptorHandler deliver) = 0;

  /// Remote-function placement, synchronized by the coordinator.
  virtual InterNodeRoutingTable& routes() = 0;

  /// Tenant admission (weight only meaningful where the engine schedules).
  virtual void add_tenant(TenantId tenant, std::uint32_t weight) = 0;

  /// Make a peer node reachable.
  virtual void connect_peer(NodeId remote) = 0;

  [[nodiscard]] virtual NodeId node() const = 0;
};

}  // namespace pd::core
