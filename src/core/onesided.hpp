// RDMA-primitive data-plane variants for the Fig. 12 comparison (§4.1.2):
//
//  - TwoSidedEchoPeer — Palladium's choice: two-sided SEND/RECV with
//    receiver-posted buffers; no locks, no copies.
//  - OwrcEchoPeer — one-sided write into a *dedicated RDMA-only pool* on
//    the receiver, which must then copy the payload into the unified pool
//    (Fig. 2 (2)). Hot/cold variants model the paper's OWRC-Best (cache
//    resident) vs OWRC-Worst (TLB-flushed, main-memory) copies.
//  - OwdlEchoPeer — one-sided write straight into the unified pool,
//    serialized by a *distributed lock* implemented with RDMA CAS
//    (Fig. 2 (1)): lock, write, unlock, and receiver-side polling.
//
// Each peer is an echo endpoint pinned to one core (the paper gives each
// DNE one core). A client peer issues requests and reports RTTs; a server
// peer echoes every arrival back over the same primitive.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/message.hpp"
#include "mem/memory_domain.hpp"
#include "rdma/rnic.hpp"
#include "sim/core.hpp"
#include "sim/stats.hpp"

namespace pd::core {

/// RTT callback for client-side request completion.
using EchoDone = std::function<void(sim::Duration rtt)>;

/// wr_id spaces for OWDL's three WR kinds, tagged in the top bits so a lock
/// CAS can never alias a data write (or an unlock) in the waiter map no
/// matter how long the run. The pre-fix scheme drew every id from one
/// counter with a flat 1e9 offset for writes, so a raw cas_id eventually
/// collided with `offset + k` and silently invoked the wrong waiter.
constexpr std::uint64_t owdl_cas_wr_id(std::uint64_t n) {
  return (1ULL << 62) | n;
}
constexpr std::uint64_t owdl_write_wr_id(std::uint64_t n) {
  return (2ULL << 62) | n;
}
constexpr std::uint64_t owdl_unlock_wr_id(std::uint64_t n) {
  return (3ULL << 62) | n;
}

// ---------------------------------------------------------------------------
// Two-sided (Palladium)
// ---------------------------------------------------------------------------

class TwoSidedEchoPeer {
 public:
  TwoSidedEchoPeer(sim::Core& core, rdma::Rnic& rnic, TenantId tenant,
                   bool is_server);

  /// Wire the peer to its remote counterpart's QP (already established and
  /// activated by the harness) and pre-post `srq_fill` receive buffers.
  void start(rdma::QueuePair& tx_qp, int srq_fill);

  /// Client side: send `payload_len` bytes and report the RTT.
  void send_request(std::uint32_t payload_len, EchoDone done);

  [[nodiscard]] std::uint64_t echoes() const { return echoes_; }

 private:
  void on_cq_event();
  void drain_cq();
  void post_one_recv();
  void send_message(std::uint64_t request_id, std::uint32_t payload_len);

  sim::Scheduler& sched_;
  sim::Core& core_;
  rdma::Rnic& rnic_;
  TenantId tenant_;
  bool is_server_;
  mem::BufferPool* pool_ = nullptr;
  rdma::QueuePair* tx_qp_ = nullptr;
  bool busy_ = false;
  std::deque<rdma::Completion> backlog_;
  std::unordered_map<std::uint64_t, std::pair<sim::TimePoint, EchoDone>>
      inflight_;
  std::uint64_t next_id_ = 1;
  std::uint64_t echoes_ = 0;
};

// ---------------------------------------------------------------------------
// One-sided with receiver-side copy (OWRC)
// ---------------------------------------------------------------------------

class OwrcEchoPeer {
 public:
  /// `cold_copy`: true models OWRC-Worst (TLB-flushed main-memory copy).
  OwrcEchoPeer(sim::Core& core, rdma::Rnic& rnic, TenantId tenant,
               bool is_server, bool cold_copy);

  /// `rdma_pool`: this peer's dedicated receive-staging pool; `slots`
  /// inbound slots are carved out of it and exposed to the remote writer.
  void start(rdma::QueuePair& tx_qp, mem::TenantMemory& rdma_pool, int slots);

  /// Tell this peer where the remote side stages inbound writes (slot
  /// index i here maps to buffer index i there).
  void set_remote_pool(PoolId remote_rdma_pool) { remote_pool_ = remote_rdma_pool; }

  void send_request(std::uint32_t payload_len, EchoDone done);

  [[nodiscard]] std::uint64_t echoes() const { return echoes_; }

 private:
  void on_cq_event();
  void on_write_arrival(const mem::BufferDescriptor& slot, std::uint32_t len);
  void process_arrival(const mem::BufferDescriptor& slot, std::uint32_t len);
  void write_message(std::uint32_t slot_index, std::uint64_t request_id,
                     std::uint32_t payload_len, bool response);

  sim::Scheduler& sched_;
  sim::Core& core_;
  rdma::Rnic& rnic_;
  TenantId tenant_;
  bool is_server_;
  bool cold_copy_;
  mem::BufferPool* upool_ = nullptr;       // unified pool (copy target)
  mem::BufferPool* rdma_pool_ = nullptr;   // RDMA-only staging pool
  PoolId remote_pool_{};                   // remote staging pool for writes
  rdma::QueuePair* tx_qp_ = nullptr;
  std::vector<std::uint32_t> free_slots_;  // client-side request slots
  std::vector<mem::BufferDescriptor> my_slots_;  // inbound slots (by index)
  std::unordered_map<std::uint64_t, std::pair<sim::TimePoint, EchoDone>>
      inflight_;
  std::unordered_map<std::uint64_t, std::uint32_t> request_slot_;
  std::uint64_t next_id_ = 1;
  std::uint64_t echoes_ = 0;
};

// ---------------------------------------------------------------------------
// One-sided with distributed locks (OWDL)
// ---------------------------------------------------------------------------

class OwdlEchoPeer {
 public:
  OwdlEchoPeer(sim::Core& core, rdma::Rnic& rnic, TenantId tenant,
               bool is_server);

  /// Inbound slots come straight from this peer's unified pool; one lock
  /// word per slot lives on this peer's RNIC.
  void start(rdma::QueuePair& tx_qp, int slots);

  /// Remote unified pool that inbound-to-the-peer writes target.
  void set_remote_pool(PoolId remote_unified_pool) {
    remote_pool_ = remote_unified_pool;
  }

  void send_request(std::uint32_t payload_len, EchoDone done);

  [[nodiscard]] std::uint64_t echoes() const { return echoes_; }
  [[nodiscard]] std::uint64_t lock_retries() const { return lock_retries_; }

 private:
  static std::uint64_t lock_addr(std::uint32_t slot_index) {
    return 0xA000 + slot_index;
  }

  void on_cq_event();
  void drain_cq();
  /// Park `fn` for wr_id `id`, checking the key is fresh — a reused id
  /// would silently clobber (or race) another in-flight continuation.
  void insert_waiter(std::uint64_t id,
                     std::function<void(std::uint64_t found)> fn);
  void on_write_arrival(const mem::BufferDescriptor& slot, std::uint32_t len);
  void await_unlock(const mem::BufferDescriptor& slot, std::uint32_t len);
  void process_arrival(const mem::BufferDescriptor& slot, std::uint32_t len);
  void acquire_lock_then_write(std::uint32_t slot_index,
                               std::uint64_t request_id,
                               std::uint32_t payload_len, bool response);
  void write_and_unlock(std::uint32_t slot_index, std::uint64_t request_id,
                        std::uint32_t payload_len, bool response);

  sim::Scheduler& sched_;
  sim::Core& core_;
  rdma::Rnic& rnic_;
  TenantId tenant_;
  bool is_server_;
  mem::BufferPool* upool_ = nullptr;
  PoolId remote_pool_{};
  rdma::QueuePair* tx_qp_ = nullptr;
  std::vector<std::uint32_t> free_slots_;
  std::vector<mem::BufferDescriptor> my_slots_;
  std::unordered_map<std::uint64_t, std::pair<sim::TimePoint, EchoDone>>
      inflight_;
  std::unordered_map<std::uint64_t, std::uint32_t> request_slot_;
  /// wr_id -> continuation for CAS results and write completions.
  std::unordered_map<std::uint64_t, std::function<void(std::uint64_t found)>>
      completion_waiters_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_cas_ = 1;
  std::uint64_t next_write_ = 1;
  std::uint64_t next_unlock_ = 1;
  std::uint64_t echoes_ = 0;
  std::uint64_t lock_retries_ = 0;
};

}  // namespace pd::core
