// In-buffer message header for Palladium's data plane.
//
// The 16-byte descriptor that travels through IPC identifies the buffer;
// this header, written at the *front of the buffer payload*, carries the
// invocation metadata (request id, destination function, chain position).
// Engines read only the header — payloads stay opaque (zero-copy).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace pd::core {

struct MessageHeader {
  std::uint64_t request_id = 0;
  std::uint32_t src_fn = FunctionId::invalid_rep;
  std::uint32_t dst_fn = FunctionId::invalid_rep;
  std::uint32_t chain_id = 0;
  std::uint16_t hop_index = 0;
  std::uint16_t flags = 0;
  std::uint32_t client_id = 0;    ///< originating client connection
  std::uint32_t payload_len = 0;  ///< application bytes after the header
  // Trace context (obs/trace.hpp). Riding in the header means the context
  // crosses every boundary the payload crosses -- Comch rings, the RDMA
  // wire, SoC-DMA staging -- with no side-tables. trace_id 0 = not sampled.
  std::uint64_t trace_id = 0;
  std::uint32_t root_span = 0;  ///< span id of the root "request" span
  std::uint32_t cur_span = 0;   ///< span the current hop must close
  // Reliability sequence number, stamped by the sending engine per wire
  // message (not per request: each hop/retransmit gets a fresh seq). 0 =
  // unsequenced (intra-node paths that never cross the fabric).
  std::uint64_t seq = 0;

  static constexpr std::uint16_t kFlagResponse = 1u << 0;
  /// The message is an error completion: delivery of the original message
  /// failed and this header travels back toward the requester. payload_len
  /// is 0; request_id/chain_id identify the failed invocation.
  static constexpr std::uint16_t kFlagError = 1u << 1;

  [[nodiscard]] FunctionId src() const { return FunctionId{src_fn}; }
  [[nodiscard]] FunctionId dst() const { return FunctionId{dst_fn}; }
  [[nodiscard]] bool is_response() const { return flags & kFlagResponse; }
  [[nodiscard]] bool is_error() const { return flags & kFlagError; }
};

static_assert(sizeof(MessageHeader) == 56, "header layout is part of the ABI");
static_assert(std::is_trivially_copyable_v<MessageHeader>);

/// Write the header at the start of a buffer span.
inline void write_header(std::span<std::byte> buffer, const MessageHeader& h) {
  PD_CHECK(buffer.size() >= sizeof(MessageHeader), "buffer too small for header");
  std::memcpy(buffer.data(), &h, sizeof h);
}

/// Read the header from the start of a buffer span.
inline MessageHeader read_header(std::span<const std::byte> buffer) {
  PD_CHECK(buffer.size() >= sizeof(MessageHeader), "buffer too small for header");
  MessageHeader h;
  std::memcpy(&h, buffer.data(), sizeof h);
  return h;
}

/// Total message bytes (header + payload) for a given payload size.
constexpr std::uint32_t message_bytes(std::uint32_t payload_len) {
  return static_cast<std::uint32_t>(sizeof(MessageHeader)) + payload_len;
}

/// Payload region of a buffer holding a message.
inline std::span<std::byte> payload_of(std::span<std::byte> buffer,
                                       const MessageHeader& h) {
  PD_CHECK(buffer.size() >= sizeof(MessageHeader) + h.payload_len,
           "buffer smaller than declared payload");
  return buffer.subspan(sizeof(MessageHeader), h.payload_len);
}

}  // namespace pd::core
