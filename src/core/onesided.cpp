#include "core/onesided.hpp"

#include <cstring>

#include "proto/cost_model.hpp"

namespace pd::core {
namespace {

/// wr_id ranges keep write and CAS completions distinguishable.
constexpr std::uint64_t kWriteIdBase = 1'000'000'000ULL;

mem::Actor peer_actor(const rdma::Rnic& rnic) {
  return mem::actor_engine(rnic.node());
}

}  // namespace

// ===========================================================================
// TwoSidedEchoPeer
// ===========================================================================

TwoSidedEchoPeer::TwoSidedEchoPeer(sim::Core& core, rdma::Rnic& rnic,
                                   TenantId tenant, bool is_server)
    : sched_(rnic.scheduler()),
      core_(core),
      rnic_(rnic),
      tenant_(tenant),
      is_server_(is_server) {}

void TwoSidedEchoPeer::start(rdma::QueuePair& tx_qp, int srq_fill) {
  tx_qp_ = &tx_qp;
  pool_ = &rnic_.host_mem().by_tenant(tenant_).pool();
  for (int i = 0; i < srq_fill; ++i) post_one_recv();
  rnic_.cq().set_notify([this] { on_cq_event(); });
}

void TwoSidedEchoPeer::post_one_recv() {
  auto d = pool_->allocate(mem::actor_rnic(rnic_.node()));
  PD_CHECK(d.has_value(), "echo peer pool exhausted while posting receives");
  rnic_.post_srq_recv(tenant_, *d);
}

void TwoSidedEchoPeer::send_request(std::uint32_t payload_len, EchoDone done) {
  PD_CHECK(!is_server_, "server peers do not originate requests");
  const std::uint64_t id = next_id_++;
  inflight_.emplace(id, std::make_pair(sched_.now(), std::move(done)));
  send_message(id, payload_len);
}

void TwoSidedEchoPeer::send_message(std::uint64_t request_id,
                                    std::uint32_t payload_len) {
  auto d = pool_->allocate(peer_actor(rnic_));
  PD_CHECK(d.has_value(), "echo peer pool exhausted on send");
  MessageHeader h;
  h.request_id = request_id;
  h.flags = is_server_ ? MessageHeader::kFlagResponse : 0;
  h.payload_len = payload_len;
  write_header(pool_->access(*d, peer_actor(rnic_)), h);
  const auto sized =
      pool_->resize(*d, peer_actor(rnic_), message_bytes(payload_len));

  core_.submit(cost::kDneSchedNs + cost::kDneTxStageNs, [this, sized] {
    pool_->transfer(sized, peer_actor(rnic_), mem::actor_rnic(rnic_.node()));
    rdma::WorkRequest wr;
    wr.wr_id = kWriteIdBase + sized.index;
    wr.opcode = rdma::Opcode::kSend;
    wr.local = sized;
    tx_qp_->post_send(wr);
  });
}

void TwoSidedEchoPeer::on_cq_event() {
  if (busy_) return;
  busy_ = true;
  drain_cq();
}

void TwoSidedEchoPeer::drain_cq() {
  auto completions = rnic_.cq().poll(8);
  if (completions.empty()) {
    busy_ = false;
    return;
  }
  sim::Duration work = 0;
  for (const auto& c : completions) {
    work += c.is_recv ? cost::kDneRxStageNs : cost::kDneRxStageNs / 2;
  }
  core_.submit(work, [this, completions = std::move(completions)] {
    for (const auto& c : completions) {
      if (!c.is_recv) {
        // Send done: recycle the staging buffer.
        pool_->transfer(c.buffer, mem::actor_rnic(rnic_.node()),
                        peer_actor(rnic_));
        pool_->release(c.buffer, peer_actor(rnic_));
        continue;
      }
      pool_->transfer(c.buffer, mem::actor_rnic(rnic_.node()),
                      peer_actor(rnic_));
      const MessageHeader h =
          read_header(pool_->access(c.buffer, peer_actor(rnic_)));
      const std::uint32_t payload_len = h.payload_len;
      const std::uint64_t id = h.request_id;
      const bool response = h.is_response();
      pool_->release(c.buffer, peer_actor(rnic_));
      post_one_recv();

      if (is_server_) {
        PD_CHECK(!response, "server received a response");
        ++echoes_;
        send_message(id, payload_len);
      } else {
        PD_CHECK(response, "client received a request");
        auto it = inflight_.find(id);
        PD_CHECK(it != inflight_.end(), "unmatched echo response " << id);
        auto [start, done] = std::move(it->second);
        inflight_.erase(it);
        if (done) done(sched_.now() - start);
      }
    }
    drain_cq();
  });
}

// ===========================================================================
// OwrcEchoPeer
// ===========================================================================

OwrcEchoPeer::OwrcEchoPeer(sim::Core& core, rdma::Rnic& rnic, TenantId tenant,
                           bool is_server, bool cold_copy)
    : sched_(rnic.scheduler()),
      core_(core),
      rnic_(rnic),
      tenant_(tenant),
      is_server_(is_server),
      cold_copy_(cold_copy) {}

void OwrcEchoPeer::start(rdma::QueuePair& tx_qp, mem::TenantMemory& rdma_pool,
                         int slots) {
  tx_qp_ = &tx_qp;
  upool_ = &rnic_.host_mem().by_tenant(tenant_).pool();
  rdma_pool_ = &rdma_pool.pool();
  for (int i = 0; i < slots; ++i) {
    auto d = rdma_pool_->allocate(mem::actor_rnic(rnic_.node()));
    PD_CHECK(d.has_value(), "staging pool too small for slot count");
    PD_CHECK(d->index == static_cast<std::uint32_t>(i),
             "slot indices must be sequential for mirrored addressing");
    my_slots_.push_back(*d);
    free_slots_.push_back(d->index);
  }
  rnic_.set_write_monitor(rdma_pool_->id(),
                          [this](const mem::BufferDescriptor& d,
                                 std::uint32_t len) { on_write_arrival(d, len); });
  rnic_.cq().set_notify([this] { on_cq_event(); });
}

void OwrcEchoPeer::on_cq_event() {
  // Only write completions reach this peer's CQ: recycle source buffers.
  for (const auto& c : rnic_.cq().poll(16)) {
    PD_CHECK(!c.is_recv && c.opcode == rdma::Opcode::kWrite,
             "unexpected completion in OWRC");
    upool_->transfer(c.buffer, mem::actor_rnic(rnic_.node()),
                     peer_actor(rnic_));
    upool_->release(c.buffer, peer_actor(rnic_));
  }
}

void OwrcEchoPeer::send_request(std::uint32_t payload_len, EchoDone done) {
  PD_CHECK(!is_server_, "server peers do not originate requests");
  PD_CHECK(!free_slots_.empty(), "request concurrency exceeds slot count");
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  const std::uint64_t id = next_id_++;
  inflight_.emplace(id, std::make_pair(sched_.now(), std::move(done)));
  request_slot_.emplace(id, slot);
  write_message(slot, id, payload_len, /*response=*/false);
}

void OwrcEchoPeer::write_message(std::uint32_t slot_index,
                                 std::uint64_t request_id,
                                 std::uint32_t payload_len, bool response) {
  PD_CHECK(remote_pool_.valid(), "set_remote_pool not called");
  auto d = upool_->allocate(peer_actor(rnic_));
  PD_CHECK(d.has_value(), "unified pool exhausted on send");
  MessageHeader h;
  h.request_id = request_id;
  h.flags = response ? MessageHeader::kFlagResponse : 0;
  h.payload_len = payload_len;
  write_header(upool_->access(*d, peer_actor(rnic_)), h);
  const auto sized =
      upool_->resize(*d, peer_actor(rnic_), message_bytes(payload_len));

  core_.submit(cost::kDneSchedNs + cost::kDneTxStageNs, [this, sized,
                                                         slot_index] {
    upool_->transfer(sized, peer_actor(rnic_), mem::actor_rnic(rnic_.node()));
    rdma::WorkRequest wr;
    wr.wr_id = kWriteIdBase + sized.index;
    wr.opcode = rdma::Opcode::kWrite;
    wr.local = sized;
    wr.remote_pool = remote_pool_;
    wr.remote_index = slot_index;
    tx_qp_->post_send(wr);
  });
}

void OwrcEchoPeer::on_write_arrival(const mem::BufferDescriptor& slot,
                                    std::uint32_t len) {
  // FaRM-style canary polling: detection happens at the next poll tick.
  sched_.schedule_after(cost::kOneSidedPollIntervalNs / 2, [this, slot, len] {
    core_.submit(cost::kOneSidedPollWorkNs,
                 [this, slot, len] { process_arrival(slot, len); });
  });
}

void OwrcEchoPeer::process_arrival(const mem::BufferDescriptor& slot,
                                   std::uint32_t len) {
  // The receiver-side copy out of the staging pool into the unified pool —
  // the cost that undermines OWRC's zero-copy claim (Fig. 2 (2)).
  const double per_byte =
      cold_copy_ ? cost::kCopyColdPerByteNs : cost::kCopyHotPerByteNs;
  const auto copy_ns =
      cost::kCopyBaseNs +
      static_cast<sim::Duration>(static_cast<double>(len) * per_byte);

  core_.submit(copy_ns + cost::kDneRxStageNs, [this, slot, len] {
    // Borrow the slot, copy, return it for the next inbound write.
    rdma_pool_->transfer(slot, mem::actor_rnic(rnic_.node()),
                         peer_actor(rnic_));
    auto local = upool_->allocate(peer_actor(rnic_));
    PD_CHECK(local.has_value(), "unified pool exhausted on receive copy");
    auto src = rdma_pool_->access(slot, peer_actor(rnic_));
    auto dst = upool_->access(*local, peer_actor(rnic_));
    std::memcpy(dst.data(), src.data(), len);
    rdma_pool_->transfer(slot, peer_actor(rnic_),
                         mem::actor_rnic(rnic_.node()));

    const MessageHeader h = read_header(upool_->access(*local, peer_actor(rnic_)));
    const std::uint64_t id = h.request_id;
    const std::uint32_t payload_len = h.payload_len;
    const bool response = h.is_response();
    upool_->release(*local, peer_actor(rnic_));

    if (is_server_) {
      PD_CHECK(!response, "server received a response");
      ++echoes_;
      // Echo back into the client's mirrored slot.
      write_message(slot.index, id, payload_len, /*response=*/true);
    } else {
      PD_CHECK(response, "client received a request");
      auto it = inflight_.find(id);
      PD_CHECK(it != inflight_.end(), "unmatched OWRC response " << id);
      auto [start, done] = std::move(it->second);
      inflight_.erase(it);
      free_slots_.push_back(request_slot_.at(id));
      request_slot_.erase(id);
      if (done) done(sched_.now() - start);
    }
  });
}

// ===========================================================================
// OwdlEchoPeer
// ===========================================================================

OwdlEchoPeer::OwdlEchoPeer(sim::Core& core, rdma::Rnic& rnic, TenantId tenant,
                           bool is_server)
    : sched_(rnic.scheduler()),
      core_(core),
      rnic_(rnic),
      tenant_(tenant),
      is_server_(is_server) {}

void OwdlEchoPeer::start(rdma::QueuePair& tx_qp, int slots) {
  tx_qp_ = &tx_qp;
  upool_ = &rnic_.host_mem().by_tenant(tenant_).pool();
  for (int i = 0; i < slots; ++i) {
    auto d = upool_->allocate(mem::actor_rnic(rnic_.node()));
    PD_CHECK(d.has_value(), "unified pool too small for slot count");
    my_slots_.push_back(*d);
    free_slots_.push_back(d->index);
    rnic_.set_atomic_word(lock_addr(d->index), 0);
  }
  rnic_.set_write_monitor(upool_->id(),
                          [this](const mem::BufferDescriptor& d,
                                 std::uint32_t len) { on_write_arrival(d, len); });
  rnic_.cq().set_notify([this] { on_cq_event(); });
}

void OwdlEchoPeer::on_cq_event() { drain_cq(); }

void OwdlEchoPeer::insert_waiter(
    std::uint64_t id, std::function<void(std::uint64_t found)> fn) {
  PD_CHECK(completion_waiters_.emplace(id, std::move(fn)).second,
           "wr_id " << id << " reused while its waiter is still parked");
}

void OwdlEchoPeer::drain_cq() {
  // Each harvested completion (lock grant, write done, unlock ack) costs
  // the engine core CQ-polling work — three WRs per transfer instead of
  // the two-sided design's one is OWDL's hidden CPU tax.
  for (const auto& c : rnic_.cq().poll(16)) {
    PD_CHECK(!c.is_recv, "unexpected recv completion in OWDL");
    auto it = completion_waiters_.find(c.wr_id);
    PD_CHECK(it != completion_waiters_.end(),
             "completion with no waiter: " << c.wr_id);
    auto fn = std::move(it->second);
    completion_waiters_.erase(it);
    core_.submit(cost::kDneRxStageNs / 2,
                 [fn = std::move(fn), found = c.atomic_found] { fn(found); });
  }
}

void OwdlEchoPeer::send_request(std::uint32_t payload_len, EchoDone done) {
  PD_CHECK(!is_server_, "server peers do not originate requests");
  PD_CHECK(!free_slots_.empty(), "request concurrency exceeds slot count");
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  const std::uint64_t id = next_id_++;
  inflight_.emplace(id, std::make_pair(sched_.now(), std::move(done)));
  request_slot_.emplace(id, slot);
  acquire_lock_then_write(slot, id, payload_len, /*response=*/false);
}

void OwdlEchoPeer::acquire_lock_then_write(std::uint32_t slot_index,
                                           std::uint64_t request_id,
                                           std::uint32_t payload_len,
                                           bool response) {
  const std::uint64_t cas_id = owdl_cas_wr_id(next_cas_++);
  insert_waiter(cas_id, [this, slot_index, request_id, payload_len,
                         response](std::uint64_t found) {
    if (found == 0) {
      write_and_unlock(slot_index, request_id, payload_len, response);
      return;
    }
    ++lock_retries_;
    sched_.schedule_after(cost::kLockRetryBackoffNs,
                          [this, slot_index, request_id, payload_len, response] {
                            acquire_lock_then_write(slot_index, request_id,
                                                    payload_len, response);
                          });
  });
  core_.submit(cost::kDneTxStageNs / 2, [this, cas_id, slot_index] {
    rdma::WorkRequest wr;
    wr.wr_id = cas_id;
    wr.opcode = rdma::Opcode::kCompareSwap;
    wr.atomic_addr = lock_addr(slot_index);
    wr.atomic_expect = 0;
    wr.atomic_desired = 1;
    tx_qp_->post_send(wr);
  });
}

void OwdlEchoPeer::write_and_unlock(std::uint32_t slot_index,
                                    std::uint64_t request_id,
                                    std::uint32_t payload_len, bool response) {
  auto d = upool_->allocate(peer_actor(rnic_));
  PD_CHECK(d.has_value(), "unified pool exhausted on send");
  MessageHeader h;
  h.request_id = request_id;
  h.flags = response ? MessageHeader::kFlagResponse : 0;
  h.payload_len = payload_len;
  write_header(upool_->access(*d, peer_actor(rnic_)), h);
  const auto sized =
      upool_->resize(*d, peer_actor(rnic_), message_bytes(payload_len));

  const std::uint64_t write_id = owdl_write_wr_id(next_write_++);
  insert_waiter(write_id, [this, sized, slot_index](std::uint64_t) {
    // Write is on the wire: recycle the source buffer and release the lock
    // (RC ordering guarantees the unlock lands after the payload).
    upool_->transfer(sized, mem::actor_rnic(rnic_.node()), peer_actor(rnic_));
    upool_->release(sized, peer_actor(rnic_));
    const std::uint64_t unlock_id = owdl_unlock_wr_id(next_unlock_++);
    insert_waiter(unlock_id, [](std::uint64_t found) {
      PD_CHECK(found == 1, "unlock found lock not held");
    });
    core_.submit(cost::kDneTxStageNs / 2, [this, slot_index, unlock_id] {
      rdma::WorkRequest unlock;
      unlock.wr_id = unlock_id;
      unlock.opcode = rdma::Opcode::kCompareSwap;
      unlock.atomic_addr = lock_addr(slot_index);
      unlock.atomic_expect = 1;
      unlock.atomic_desired = 0;
      tx_qp_->post_send(unlock);
    });
  });

  core_.submit(cost::kDneSchedNs + cost::kDneTxStageNs, [this, sized,
                                                         slot_index,
                                                         write_id] {
    upool_->transfer(sized, peer_actor(rnic_), mem::actor_rnic(rnic_.node()));
    rdma::WorkRequest wr;
    wr.wr_id = write_id;
    wr.opcode = rdma::Opcode::kWrite;
    wr.local = sized;
    wr.remote_pool = remote_pool_;
    wr.remote_index = slot_index;
    tx_qp_->post_send(wr);
  });
}

void OwdlEchoPeer::on_write_arrival(const mem::BufferDescriptor& slot,
                                    std::uint32_t len) {
  await_unlock(slot, len);
}

void OwdlEchoPeer::await_unlock(const mem::BufferDescriptor& slot,
                                std::uint32_t len) {
  // Receiver-side polling: data visible, but the sender's lock must clear
  // before local processing may touch the buffer.
  sched_.schedule_after(cost::kOneSidedPollIntervalNs / 2, [this, slot, len] {
    core_.submit(cost::kOneSidedPollWorkNs, [this, slot, len] {
      if (rnic_.atomic_word(lock_addr(slot.index)) != 0) {
        sched_.schedule_after(cost::kOneSidedPollIntervalNs,
                              [this, slot, len] { await_unlock(slot, len); });
        return;
      }
      process_arrival(slot, len);
    });
  });
}

void OwdlEchoPeer::process_arrival(const mem::BufferDescriptor& slot,
                                   std::uint32_t len) {
  core_.submit(cost::kDneRxStageNs, [this, slot, len] {
    (void)len;
    // Take ownership for local processing (the lock protocol guarantees
    // the remote writer is done), then hand it back before replying.
    upool_->transfer(slot, mem::actor_rnic(rnic_.node()), peer_actor(rnic_));
    const MessageHeader h = read_header(upool_->access(slot, peer_actor(rnic_)));
    const std::uint64_t id = h.request_id;
    const std::uint32_t payload_len = h.payload_len;
    const bool response = h.is_response();
    upool_->transfer(slot, peer_actor(rnic_), mem::actor_rnic(rnic_.node()));

    if (is_server_) {
      PD_CHECK(!response, "server received a response");
      ++echoes_;
      acquire_lock_then_write(slot.index, id, payload_len, /*response=*/true);
    } else {
      PD_CHECK(response, "client received a request");
      auto it = inflight_.find(id);
      PD_CHECK(it != inflight_.end(), "unmatched OWDL response " << id);
      auto [start, done] = std::move(it->second);
      inflight_.erase(it);
      free_slots_.push_back(request_slot_.at(id));
      request_slot_.erase(id);
      if (done) done(sched_.now() - start);
    }
  });
}

}  // namespace pd::core
