// Palladium's network engine: the node-wide reverse proxy that owns the
// RDMA resources on behalf of tenant functions (§3.1–§3.5).
//
// Three build flavours share this implementation:
//  - kDneOffPath — the paper's DNE: runs on a wimpy DPU core, reaches
//    tenant buffers through cross-processor shared memory (off-path), and
//    talks to host functions over Comch-E.
//  - kDneOnPath  — ablation for Fig. 11: also on the DPU, but stages every
//    payload through SoC memory with the slow SoC DMA engine.
//  - kCne        — apples-to-apples CPU variant (§4.3): same logic on a
//    host core, SK_MSG instead of Comch.
//
// Data plane: a non-blocking run-to-completion loop (§3.2). TX consumes
// descriptors from tenant queues under DWRR (§3.3), resolves the
// destination node, and posts two-sided SENDs on the least-congested RC
// connection. RX polls CQEs, resolves the destination function via the
// receive-buffer registry and message header, and forwards descriptors
// over the cross-processor channel. A core-thread task replenishes each
// tenant's shared RQ to match consumption (§3.5.2).
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dataplane.hpp"
#include "core/dwrr.hpp"
#include "core/message.hpp"
#include "core/rbr.hpp"
#include "core/routing.hpp"
#include "dpu/comch.hpp"
#include "dpu/dpu.hpp"
#include "ipc/skmsg.hpp"
#include "rdma/connection.hpp"

namespace pd::core {

enum class EngineKind : std::uint8_t { kDneOffPath, kDneOnPath, kCne };

const char* to_string(EngineKind kind);

struct EngineConfig {
  /// DWRR (true) or FCFS (false) tenant scheduling — Fig. 15's contrast.
  bool use_dwrr = true;
  /// Extra per-message work on the engine core, for experiments that pin
  /// the engine's capacity to a target rate (§4.2 configures ~110K RPS).
  sim::Duration extra_per_msg_ns = 0;
  /// Receive buffers kept posted per tenant SRQ.
  int srq_fill = 64;
  /// Pre-established RC connections per (peer node, tenant).
  int rc_connections = 2;
  /// Core-thread replenish period.
  sim::Duration replenish_period = 20'000;  // 20 µs
  /// CQEs drained per RX iteration (batching in the event loop).
  int rx_batch = 8;
  /// §4.2 CQE batching / interrupt moderation: defer the CQ notify until
  /// this many CQEs accumulate (or the window below expires), so the engine
  /// drains N completions per scheduled poll event instead of waking once
  /// per arrival. 1 = notify per arrival (bit-identical legacy behaviour).
  int cq_coalesce_batch = 1;
  /// Max time a completion may sit unharvested while coalescing
  /// (moderation timer). 0 disables coalescing regardless of the batch.
  sim::Duration cq_coalesce_window = 2'000;  // 2 µs
  /// Doorbell/WR coalescing: TX messages dequeued and posted per engine-core
  /// event. The per-message stage cost is unchanged — batching only merges
  /// scheduling decisions into one run-to-completion slice (fewer simulator
  /// events, slightly burstier posts). 1 = legacy one-event-per-message.
  int tx_doorbell_batch = 1;
  /// Cap on simultaneously active (RNIC-cache-resident) QPs; shadow QPs
  /// beyond this stay inactive until needed (§3.3 / [52]).
  int max_active_qps = cost::kRnicQpCacheSlots;

  // --- reliability (per-message ack/timeout/retransmit) --------------------
  /// Retransmit timeout per sequenced message; 0 disables the reliability
  /// layer entirely (fire-and-forget, the pre-fault-model behaviour).
  sim::Duration retransmit_timeout = 100'000;  // 100 µs
  /// Total send attempts per message (first send + retries) before the
  /// engine gives up and emits an explicit error completion.
  int max_send_attempts = 4;
  /// Admission cap: once this many sequenced messages await ACKs, new
  /// ingest is shed with an error completion instead of queued (explicit
  /// back-pressure rather than silent loss under pool exhaustion).
  std::size_t max_unacked = 512;
  /// Receiver-side RNR parking bound per tenant; arrivals beyond it are
  /// dropped with a NACK datagram back to the sender.
  std::size_t rnr_queue_limit = 64;

  // --- per-tenant admission (ISSUE 7: tenant-scoped credit gate) -----------
  /// Partition `max_unacked` into per-tenant credit caps proportional to
  /// DWRR weights: a tenant whose queued + unacked occupancy reaches its
  /// cap is shed individually (explicit error completion) instead of
  /// letting one aggressor exhaust the node-wide window for everyone.
  /// Requires use_dwrr (per-tenant queue depths are meaningless under the
  /// FCFS baseline).
  bool tenant_admission = false;
  /// Floor on any tenant's credit cap, so low-weight tenants keep enough
  /// credits to make progress even on a crowded node.
  std::size_t min_tenant_credits = 8;
};

struct EngineCounters {
  std::uint64_t tx_msgs = 0;
  std::uint64_t rx_msgs = 0;
  std::uint64_t recycled = 0;
  std::uint64_t replenished = 0;
  std::uint64_t drops_no_route = 0;
  // Reliability layer.
  std::uint64_t retransmits = 0;       ///< timeout-driven re-sends
  std::uint64_t acks_rx = 0;           ///< ACK datagrams consumed
  std::uint64_t nacks_rx = 0;          ///< NACK datagrams (receiver shed us)
  std::uint64_t dup_rx = 0;            ///< duplicate deliveries suppressed
  std::uint64_t send_failures = 0;     ///< messages failed after retries/NACK
  std::uint64_t requests_shed = 0;     ///< ingest shed at the admission cap
  std::uint64_t shed_admission = 0;    ///< subset shed by the per-tenant gate
  std::uint64_t error_completions = 0; ///< explicit error completions emitted
  std::uint64_t errors_dropped = 0;    ///< terminal errors with no way back
};

class NetworkEngine : public DataPlane {
 public:
  /// `engine_core`: the DPU core (kDne*) or host core (kCne) running the
  /// worker loop. `dpu` required for kDneOnPath (SoC DMA) and used for
  /// Comch by both DNE flavours; pass nullptr for kCne.
  NetworkEngine(sim::Scheduler& sched, EngineKind kind, EngineConfig config,
                sim::Core& engine_core, rdma::Rnic& rnic,
                mem::MemoryDomain& host_mem, dpu::Dpu* dpu);

  NetworkEngine(const NetworkEngine&) = delete;
  NetworkEngine& operator=(const NetworkEngine&) = delete;

  // --- control plane -------------------------------------------------------

  /// Register a tenant (weight used by DWRR). Imports its memory pool
  /// cross-processor, registers it with the RNIC, fills its SRQ, and
  /// establishes RC connections to all known peers.
  void add_tenant(TenantId tenant, std::uint32_t weight) override;

  /// Deregister a tenant (autoscaler-driven scale-down). Drains whatever
  /// the tenant still has queued in the scheduler into explicit error
  /// completions — never silent loss — and returns how many were drained.
  /// The tenant's local functions must be unregistered first. In-flight
  /// sequenced messages keep their reliability state and resolve normally.
  std::size_t remove_tenant(TenantId tenant);

  /// Make `remote` reachable (establishes per-tenant RC connection pools).
  void connect_peer(NodeId remote) override;

  /// Register a local function: `deliver` runs on `host_core` when a
  /// message for `fn` arrives from the fabric.
  void register_local_function(FunctionId fn, TenantId tenant,
                               sim::Core& host_core,
                               ipc::DescriptorHandler deliver) override;
  void unregister_local_function(FunctionId fn);

  /// Coordinator-synchronized placement of remote functions.
  InterNodeRoutingTable& routes() override { return routes_; }

  // --- data plane (called from the function runtime / ingress) ------------

  /// Hand a message to the engine for inter-node transmission. The caller
  /// (function `src` on `src_core`) must have written the MessageHeader
  /// and must still own the buffer; ownership moves to the engine here.
  void submit(FunctionId src, sim::Core& src_core,
              const mem::BufferDescriptor& d,
              bool precharged = false) override;

  [[nodiscard]] sim::Duration ingest_cost() const override;

  // --- introspection -------------------------------------------------------

  [[nodiscard]] EngineKind kind() const { return kind_; }
  [[nodiscard]] NodeId node() const override { return rnic_.node(); }
  [[nodiscard]] sim::Core& core() { return engine_core_; }
  [[nodiscard]] const EngineCounters& counters() const { return counters_; }
  [[nodiscard]] rdma::ConnectionManager& connections() { return conn_mgr_; }
  [[nodiscard]] std::size_t tx_backlog() const;
  [[nodiscard]] std::uint64_t rx_consumed(TenantId t) const {
    return rbr_outstanding_lookup(t);
  }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  /// Sequenced messages awaiting ACK (the reliability window occupancy;
  /// headroom against config().max_unacked is a flight-recorder series).
  [[nodiscard]] std::size_t unacked_count() const { return unacked_.size(); }
  /// Messages queued in the tenant scheduler for `t` (DWRR or FCFS — the
  /// FCFS baseline has no per-tenant split, so it reports its whole queue).
  [[nodiscard]] std::size_t queued_for(TenantId t) const {
    return config_.use_dwrr ? dwrr_.pending_for(t) : fcfs_.pending();
  }
  /// Current DWRR deficit credit for `t` (0 under FCFS).
  [[nodiscard]] std::uint64_t dwrr_deficit(TenantId t) const {
    return config_.use_dwrr ? dwrr_.deficit_of(t) : 0;
  }
  /// Sequenced messages of tenant `t` awaiting ACK.
  [[nodiscard]] std::size_t tenant_unacked(TenantId t) const {
    auto it = tenant_unacked_.find(t);
    return it == tenant_unacked_.end() ? 0 : it->second;
  }
  /// Per-tenant admission credit cap (0 when the tenant is unknown or the
  /// tenant gate is disabled).
  [[nodiscard]] std::size_t tenant_credit_cap(TenantId t) const {
    auto it = tenants_.find(t);
    return it == tenants_.end() ? 0 : it->second.credit_cap;
  }
  [[nodiscard]] bool has_tenant(TenantId t) const {
    return tenants_.find(t) != tenants_.end();
  }

  [[nodiscard]] mem::Actor actor() const {
    return mem::actor_engine(rnic_.node());
  }

  /// Interception hook for one-sided completions (READ/CAS/FAA and the
  /// store client's tagged WRITEs). The engine is the sole CQ consumer on a
  /// cluster node, and handle_send_done treats unknown wr_ids as orphaned
  /// send buffers to recycle — so a one-sided user on the same node MUST
  /// claim its completions here. Return true to consume the completion.
  using OneSidedHandler = std::function<bool(const rdma::Completion&)>;
  void set_onesided_handler(OneSidedHandler handler) {
    onesided_ = std::move(handler);
  }

 private:
  struct TenantState {
    std::uint32_t weight = 1;
    /// Weight-proportional share of max_unacked (see tenant_admission).
    std::size_t credit_cap = 0;
  };

  void recompute_credit_caps();

  void on_ingest(const mem::BufferDescriptor& d);
  void kick_tx();
  void tx_iteration();
  void transmit(const mem::BufferDescriptor& d);
  void kick_rx();
  void rx_iteration();
  void handle_recv(const rdma::Completion& c);
  void handle_send_done(const rdma::Completion& c);
  void deliver_local(const mem::BufferDescriptor& d, FunctionId dst);
  void replenish_tick();
  void fill_srq(TenantId tenant, std::uint64_t n);

  // --- reliability ---------------------------------------------------------

  /// Sender-side state of a sequenced message awaiting its ACK. The engine
  /// keeps the buffer (zero-copy retransmit: the payload never moves) until
  /// the receiver acknowledges or the message is declared failed.
  struct UnackedMsg {
    mem::BufferDescriptor d;
    NodeId dest;
    int attempts = 1;
    sim::EventId timer = sim::kInvalidEvent;
    /// Buffer currently owned by the RNIC (send completion not harvested).
    bool in_flight = true;
    enum class Outcome : std::uint8_t { kPending, kAcked, kFailed };
    Outcome outcome = Outcome::kPending;
    /// Open "retransmit" span covering loss recovery (0 = none/untraced).
    std::uint32_t retx_span = 0;
  };
  using UnackedIter = std::unordered_map<std::uint64_t, UnackedMsg>::iterator;

  [[nodiscard]] bool reliable() const { return config_.retransmit_timeout > 0; }
  void on_datagram(NodeId from, const rdma::Datagram& dg);
  void on_retransmit_timeout(std::uint64_t seq);
  void release_tenant_credit(TenantId tenant);
  void finish_success(UnackedIter it);
  void finish_failure(UnackedIter it);
  /// Turn an undeliverable/failed message (buffer owned by the engine) into
  /// an explicit error completion routed back toward its submitter — local
  /// delivery, or back over the fabric for messages that arrived from a
  /// remote engine. Error messages that themselves fail are dropped
  /// terminally (no error storms).
  void complete_with_error(const mem::BufferDescriptor& d);
  [[nodiscard]] bool is_duplicate(NodeId sender, std::uint64_t seq);

  // --- observability (no-ops when no obs::Hub is installed) ----------------

  /// Baton hop: end the span the message arrived with, open `stage` on this
  /// engine's track, and write the updated header back into the buffer.
  void trace_stage(const mem::BufferDescriptor& d, std::string_view stage);
  /// Close the message's "retransmit" recovery span, if one is open.
  void end_retransmit_span(UnackedMsg& m);
  /// Open a "soc_dma" span for the staging copy of `d` (0 when unsampled).
  std::uint32_t begin_soc_dma_span(const mem::BufferDescriptor& d);
  /// Close the staging span and record the copy's duration into the
  /// always-on `dne.soc_dma_ns{dir=...,node=...}` histogram.
  void end_soc_dma(std::uint32_t span, const char* dir, sim::TimePoint begin);
  std::uint64_t rbr_outstanding_lookup(TenantId t) const {
    return rbr_.outstanding(t);
  }
  /// Resource-ledger queue-wait bracketing (ISSUE 10): enter when a message
  /// joins the DWRR/FCFS scheduler, exit when it is dequeued for a TX slice
  /// (serviced: also record the slice's service segment, the evidence later
  /// waiters are blamed against) or drained by tenant teardown.
  void ledger_queue_enter(TenantId tenant);
  void ledger_queue_exit(TenantId tenant, bool serviced);

  mem::BufferPool& pool_of(const mem::BufferDescriptor& d);

  sim::Scheduler& sched_;
  EngineKind kind_;
  EngineConfig config_;
  sim::Core& engine_core_;
  rdma::Rnic& rnic_;
  mem::MemoryDomain& host_mem_;
  dpu::Dpu* dpu_;
  rdma::ConnectionManager conn_mgr_;

  InterNodeRoutingTable routes_;
  ReceiveBufferRegistry rbr_;
  DwrrScheduler<mem::BufferDescriptor> dwrr_;
  FcfsScheduler<mem::BufferDescriptor> fcfs_;
  std::unordered_map<TenantId, TenantState> tenants_;
  std::vector<NodeId> peers_;

  /// DNE flavours: the Comch server towards host functions.
  std::unique_ptr<dpu::ComchServer> comch_;
  /// CNE: SK_MSG sockets towards host functions.
  std::unique_ptr<ipc::SockMap> sockmap_;
  /// Local delivery endpoints (needed for both flavours' bookkeeping).
  std::unordered_map<FunctionId, sim::Core*> local_fns_;

  /// Trace display row for this engine's spans, e.g. "node1/dne".
  std::string track_;
  /// Ledger resource name of the TX scheduler queue, e.g. "node1/dne/txq".
  std::string ledger_queue_;

  bool tx_busy_ = false;
  bool rx_busy_ = false;
  /// RX poll scratch, reused across iterations (only one RX batch is in
  /// flight at a time — see rx_busy_).
  std::vector<rdma::Completion> rx_scratch_;
  OneSidedHandler onesided_;
  std::uint64_t next_wr_id_ = 1;
  EngineCounters counters_;

  // Reliability state.
  std::unordered_map<std::uint64_t, UnackedMsg> unacked_;  ///< seq -> state
  /// Per-tenant slice of unacked_ (occupancy for the tenant credit gate).
  std::unordered_map<TenantId, std::size_t> tenant_unacked_;
  std::unordered_map<std::uint64_t, std::uint64_t> wr_seq_;  ///< wr_id -> seq
  std::uint64_t next_seq_ = 1;
  /// Receiver-side duplicate suppression: per sender node, a bounded FIFO
  /// window of recently seen sequence numbers.
  /// Replay-protection window per sender: a circular bitmap over the last
  /// kBits sequence numbers ending at max_seq. O(1) and allocation-free
  /// per arrival (a set+deque window costs several hash ops per message).
  struct DedupWindow {
    static constexpr std::uint64_t kBits = 4096;
    std::uint64_t max_seq = 0;
    std::array<std::uint64_t, kBits / 64> bits{};
  };
  std::unordered_map<NodeId, DedupWindow> dedup_;
};

}  // namespace pd::core
