// Routing state (§3.5.5): the intra-node table maps local functions to
// their IPC endpoints; the inter-node table (held by the DNE) maps remote
// functions to worker nodes. A control-plane coordinator synchronizes both
// on function deployment events.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"
#include "common/ids.hpp"

namespace pd::core {

/// Function -> node placement, as known by one node's DNE.
class InterNodeRoutingTable {
 public:
  void add_route(FunctionId fn, NodeId node) {
    PD_CHECK(routes_.emplace(fn, node).second,
             "duplicate inter-node route for function " << fn);
  }
  void remove_route(FunctionId fn) {
    PD_CHECK(routes_.erase(fn) == 1, "no route for function " << fn);
  }
  [[nodiscard]] bool has_route(FunctionId fn) const {
    return routes_.find(fn) != routes_.end();
  }
  [[nodiscard]] NodeId lookup(FunctionId fn) const {
    auto it = routes_.find(fn);
    PD_CHECK(it != routes_.end(), "no inter-node route for function " << fn);
    return it->second;
  }
  [[nodiscard]] std::size_t size() const { return routes_.size(); }

 private:
  std::unordered_map<FunctionId, NodeId> routes_;
};

/// Which functions are local to this node. Stored read-only for functions
/// in the unified memory pool; the I/O library queries it to choose the
/// intra-node (shared memory) vs inter-node (DNE) path.
class IntraNodeRoutingTable {
 public:
  void add_local(FunctionId fn) {
    PD_CHECK(local_.emplace(fn).second,
             "function " << fn << " already local");
  }
  void remove_local(FunctionId fn) {
    PD_CHECK(local_.erase(fn) == 1, "function " << fn << " not local");
  }
  [[nodiscard]] bool is_local(FunctionId fn) const {
    return local_.find(fn) != local_.end();
  }
  [[nodiscard]] std::size_t size() const { return local_.size(); }

 private:
  std::unordered_set<FunctionId> local_;
};

}  // namespace pd::core
