#include "core/engine.hpp"

#include "core/trace_hooks.hpp"
#include "dpu/mmap.hpp"
#include "obs/hub.hpp"
#include "proto/cost_model.hpp"
#include "sim/profile.hpp"

namespace pd::core {

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kDneOffPath: return "DNE (off-path)";
    case EngineKind::kDneOnPath: return "DNE (on-path)";
    case EngineKind::kCne: return "CNE";
  }
  return "?";
}

NetworkEngine::NetworkEngine(sim::Scheduler& sched, EngineKind kind,
                             EngineConfig config, sim::Core& engine_core,
                             rdma::Rnic& rnic, mem::MemoryDomain& host_mem,
                             dpu::Dpu* dpu)
    : sched_(sched),
      kind_(kind),
      config_(config),
      engine_core_(engine_core),
      rnic_(rnic),
      host_mem_(host_mem),
      dpu_(dpu),
      conn_mgr_(rnic, config.max_active_qps) {
  PD_CHECK(kind_ == EngineKind::kCne || dpu_ != nullptr,
           "DNE flavours require a DPU");
  PD_CHECK(config_.srq_fill > 0 && config_.rc_connections > 0,
           "bad engine config");
  PD_CHECK(!config_.tenant_admission || config_.use_dwrr,
           "tenant_admission requires DWRR scheduling");
  PD_CHECK(!config_.tenant_admission || reliable(),
           "tenant_admission partitions the reliability window; enable "
           "retransmit_timeout");

  if (kind_ == EngineKind::kCne) {
    sockmap_ = std::make_unique<ipc::SockMap>(sched_);
    // The engine's own socket: functions redirect descriptors here for
    // inter-node sends.
    sockmap_->register_socket(kEngineSocket, engine_core_,
                              [this](const mem::BufferDescriptor& d) {
                                on_ingest(d);
                              });
  } else {
    comch_ = std::make_unique<dpu::ComchServer>(
        sched_, engine_core_, dpu::ComchVariant::kEvent,
        [this](FunctionId, const mem::BufferDescriptor& d) { on_ingest(d); });
    engine_core_.set_busy_poll(true);  // run-to-completion busy loop
  }

  track_ = "node" + std::to_string(node().value()) +
           (kind_ == EngineKind::kCne ? "/cne" : "/dne");
  ledger_queue_ = track_ + "/txq";

  rnic_.cq().set_notify([this] { kick_rx(); });
  rnic_.cq().set_coalescing(
      &sched_, static_cast<std::size_t>(std::max(config_.cq_coalesce_batch, 1)),
      config_.cq_coalesce_window);
  rnic_.set_rnr_queue_limit(config_.rnr_queue_limit);
  // The reliability layer's ACK/NACK control channel (hardware-generated
  // in the real DNE: no engine-core cost on either end).
  rnic_.network().set_datagram_handler(
      node(),
      [this](NodeId from, const rdma::Datagram& dg) { on_datagram(from, dg); });
  // Fault-injected SRQ drains bypass the CQE path; reconcile the RBR so the
  // replenisher sees the deficit and refills.
  rnic_.set_drain_listener([this](TenantId t, const mem::BufferDescriptor& d) {
    rbr_.on_dropped(t, d);
  });
  sched_.schedule_background_after(config_.replenish_period,
                                   [this] { replenish_tick(); });
}

mem::BufferPool& NetworkEngine::pool_of(const mem::BufferDescriptor& d) {
  return host_mem_.by_pool(d.pool).pool();
}

void NetworkEngine::ledger_queue_enter(TenantId tenant) {
  auto* h = obs::hub();
  if (h == nullptr || !h->ledger.enabled()) return;
  h->ledger.queue_enter(obs::LedgerKind::kQueue, ledger_queue_,
                        tenant.value(), sched_.now());
}

void NetworkEngine::ledger_queue_exit(TenantId tenant, bool serviced) {
  auto* h = obs::hub();
  if (h == nullptr || !h->ledger.enabled()) return;
  const sim::TimePoint now = sched_.now();
  h->ledger.queue_exit(obs::LedgerKind::kQueue, ledger_queue_, tenant.value(),
                       now);
  if (!serviced) return;  // teardown drain: no TX slice was spent
  // The dequeued message's share of the TX slice, in engine-core time —
  // the occupancy later waiters at this queue are blamed against.
  const sim::Duration per_msg = engine_core_.scale(
      cost::kDneSchedNs + cost::kDneTxStageNs + config_.extra_per_msg_ns);
  h->ledger.occupy(obs::LedgerKind::kQueue, ledger_queue_, tenant.value(), now,
                   now + per_msg);
}

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

void NetworkEngine::add_tenant(TenantId tenant, std::uint32_t weight) {
  PD_CHECK(tenants_.find(tenant) == tenants_.end(),
           "tenant " << tenant << " already registered with engine");
  auto& tm = host_mem_.by_tenant(tenant);

  if (kind_ != EngineKind::kCne) {
    // Cross-processor mapping: import the host pool on the DPU, then
    // register it with the RNIC (§3.4.2 steps 1-3).
    auto mmap = dpu::CrossProcessorMmap::import_export_descriptor(tm);
    PD_CHECK(mmap.rnic_registrable(),
             "tenant pool lacks RDMA export grant for DNE registration");
  } else {
    PD_CHECK(tm.exported_to_rdma(), "tenant pool lacks RDMA export grant");
  }
  rnic_.register_memory(tm.pool_id());

  tenants_.emplace(tenant, TenantState{weight});
  dwrr_.add_tenant(tenant, weight);
  recompute_credit_caps();

  fill_srq(tenant, static_cast<std::uint64_t>(config_.srq_fill));
  for (NodeId peer : peers_) {
    conn_mgr_.establish(peer, tenant, config_.rc_connections, nullptr);
  }
}

std::size_t NetworkEngine::remove_tenant(TenantId tenant) {
  auto it = tenants_.find(tenant);
  PD_CHECK(it != tenants_.end(), "removing unknown tenant " << tenant);
  PD_CHECK(config_.use_dwrr,
           "remove_tenant needs per-tenant queues (DWRR scheduling)");
  // Drain first, deregister second: complete_with_error on each drained
  // message must not find the tenant still schedulable (an error completion
  // for a remote submitter would otherwise re-enter the queue being torn
  // down — the guard in complete_with_error routes it to errors_dropped).
  std::vector<mem::BufferDescriptor> queued = dwrr_.drain_tenant(tenant);
  for (const mem::BufferDescriptor& d : queued) {
    ledger_queue_exit(d.tenant, /*serviced=*/false);
  }
  tenants_.erase(it);
  recompute_credit_caps();
  for (const mem::BufferDescriptor& d : queued) complete_with_error(d);
  return queued.size();
}

void NetworkEngine::recompute_credit_caps() {
  std::uint64_t total_weight = 0;
  for (const auto& [tenant, state] : tenants_) total_weight += state.weight;
  for (auto& [tenant, state] : tenants_) {
    const auto share = static_cast<std::size_t>(
        total_weight == 0
            ? config_.max_unacked
            : config_.max_unacked * state.weight / total_weight);
    state.credit_cap = std::max(config_.min_tenant_credits, share);
  }
}

void NetworkEngine::connect_peer(NodeId remote) {
  PD_CHECK(remote != node(), "peer must be a different node");
  for (NodeId p : peers_) PD_CHECK(p != remote, "peer already connected");
  peers_.push_back(remote);
  for (const auto& [tenant, state] : tenants_) {
    conn_mgr_.establish(remote, tenant, config_.rc_connections, nullptr);
  }
}

void NetworkEngine::register_local_function(FunctionId fn, TenantId tenant,
                                            sim::Core& host_core,
                                            ipc::DescriptorHandler deliver) {
  PD_CHECK(tenants_.find(tenant) != tenants_.end(),
           "register function of unknown tenant " << tenant);
  PD_CHECK(local_fns_.emplace(fn, &host_core).second,
           "function " << fn << " already registered");
  if (comch_) {
    comch_->connect(fn, host_core, std::move(deliver));
  } else {
    sockmap_->register_socket(fn, host_core, std::move(deliver));
  }
}

void NetworkEngine::unregister_local_function(FunctionId fn) {
  PD_CHECK(local_fns_.erase(fn) == 1, "function " << fn << " not registered");
  if (comch_) {
    comch_->disconnect(fn);
  } else {
    sockmap_->unregister_socket(fn);
  }
}

// ---------------------------------------------------------------------------
// TX path
// ---------------------------------------------------------------------------

sim::Duration NetworkEngine::ingest_cost() const {
  return comch_ ? comch_->host_enqueue_cost() : cost::kSkMsgSendNs;
}

void NetworkEngine::submit(FunctionId src, sim::Core& src_core,
                           const mem::BufferDescriptor& d, bool precharged) {
  // The function hands its ownership token to the engine along with the
  // descriptor (token passing, §3.5.1).
  pool_of(d).transfer(d, mem::actor_function(src), actor());
  if (comch_) {
    comch_->send_to_server(src, d, /*charge_host=*/!precharged);
  } else {
    sockmap_->send(kEngineSocket, d, precharged ? nullptr : &src_core);
  }
}

void NetworkEngine::on_ingest(const mem::BufferDescriptor& d) {
  // Runs on the engine core (charged by the channel). Queue under the
  // tenant and kick the TX stage.
  auto tit = tenants_.find(d.tenant);
  PD_CHECK(tit != tenants_.end(),
           "message from unknown tenant " << d.tenant);
  if (reliable() && config_.tenant_admission) {
    // Tenant-scoped credit gate (ISSUE 7): occupancy counts both what the
    // tenant has queued in the scheduler and what it has in the reliability
    // window, so a tenant saturating either stage is shed individually.
    const std::size_t occupancy =
        queued_for(d.tenant) + tenant_unacked(d.tenant);
    if (occupancy >= tit->second.credit_cap) {
      ++counters_.requests_shed;
      ++counters_.shed_admission;
      if (auto* h = obs::hub()) {
        h->registry
            .counter("engine.shed_admission",
                     "node=" + std::to_string(node().value()) +
                         ",tenant=" + std::to_string(d.tenant.value()))
            .inc();
      }
      complete_with_error(d);
      return;
    }
  }
  if (reliable() && unacked_.size() >= config_.max_unacked) {
    // Load shedding at admission: too many sends already await ACKs (the
    // fabric or a peer is struggling). Fail explicitly instead of letting
    // the backlog eat the buffer pool.
    ++counters_.requests_shed;
    if (auto* h = obs::hub()) {
      h->registry
          .counter("engine.requests_shed",
                   "node=" + std::to_string(node().value()))
          .inc();
    }
    complete_with_error(d);
    return;
  }
  trace_stage(d, "engine_tx");
  if (config_.use_dwrr) {
    dwrr_.enqueue(d.tenant, d);
  } else {
    fcfs_.enqueue(d.tenant, d);
  }
  ledger_queue_enter(d.tenant);
  kick_tx();
}

std::size_t NetworkEngine::tx_backlog() const {
  return config_.use_dwrr ? dwrr_.pending() : fcfs_.pending();
}

void NetworkEngine::kick_tx() {
  if (tx_busy_ || tx_backlog() == 0) return;
  tx_busy_ = true;
  tx_iteration();
}

void NetworkEngine::tx_iteration() {
  // One run-to-completion TX slice: scheduling decision + routing lookup +
  // WR wrap + doorbell per message (§3.2). With doorbell coalescing, up to
  // tx_doorbell_batch messages share one engine-core event — same total
  // stage cost, one scheduling decision slice, one doorbell ring.
  const auto batch = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(config_.tx_doorbell_batch, 1)),
      tx_backlog());
  const sim::Duration work =
      static_cast<sim::Duration>(batch) *
      (cost::kDneSchedNs + cost::kDneTxStageNs + config_.extra_per_msg_ns);
  sim::ProfileScope scope{"engine", "tx"};
  engine_core_.submit(work, [this, batch] {
    // A tenant teardown (remove_tenant) may have drained the queues while
    // this slice's core time was being charged: transmit only what is
    // still there. The scheduling work was genuinely spent either way.
    const std::size_t avail = std::min<std::size_t>(batch, tx_backlog());
    for (std::size_t i = 0; i < avail; ++i) {
      auto item = config_.use_dwrr ? dwrr_.dequeue() : fcfs_.dequeue();
      PD_CHECK(item.has_value(), "TX iteration with empty queues");
      ledger_queue_exit(item->tenant, /*serviced=*/true);
      if (kind_ == EngineKind::kDneOnPath) {
        // On-path: stage the payload through SoC memory first (slow DMA).
        const auto bytes = item->length;
        const std::uint32_t dma_span = begin_soc_dma_span(*item);
        const sim::TimePoint t0 = sched_.now();
        sim::ProfileScope dma_scope{"dma", "tx", item->tenant.value()};
        dpu_->dma().transfer(bytes, [this, d = *item, dma_span, t0] {
          end_soc_dma(dma_span, "tx", t0);
          transmit(d);
        });
      } else {
        transmit(*item);
      }
    }
    if (tx_backlog() > 0) {
      tx_iteration();
    } else {
      tx_busy_ = false;
    }
  });
}

void NetworkEngine::transmit(const mem::BufferDescriptor& d) {
  auto bytes = pool_of(d).access(d, actor());
  MessageHeader h = read_header(bytes);
  if (!routes_.has_route(h.dst())) {
    ++counters_.drops_no_route;
    if (auto* hub = obs::hub()) {
      hub->registry
          .counter("engine.drops_no_route",
                   "node=" + std::to_string(node().value()))
          .inc();
    }
    complete_with_error(d);
    return;
  }
  const NodeId dest = routes_.lookup(h.dst());

  std::uint64_t seq = 0;
  if (reliable()) {
    seq = next_seq_++;
    h.seq = seq;
    write_header(bytes, h);
  }

  pool_of(d).transfer(d, actor(), mem::actor_rnic(node()));
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = rdma::Opcode::kSend;
  wr.local = d;
  if (reliable()) {
    UnackedMsg m;
    m.d = d;
    m.dest = dest;
    m.timer = sched_.schedule_after(config_.retransmit_timeout,
                                    [this, seq] { on_retransmit_timeout(seq); });
    unacked_.emplace(seq, m);
    ++tenant_unacked_[d.tenant];
    wr_seq_.emplace(wr.wr_id, seq);
  }
  conn_mgr_.send(dest, d.tenant, wr);
  ++counters_.tx_msgs;
}

// ---------------------------------------------------------------------------
// RX path
// ---------------------------------------------------------------------------

void NetworkEngine::kick_rx() {
  if (rx_busy_) return;
  rx_busy_ = true;
  rx_iteration();
}

void NetworkEngine::rx_iteration() {
  const std::size_t n = rnic_.cq().poll_into(
      rx_scratch_, static_cast<std::size_t>(config_.rx_batch));
  if (n == 0) {
    rx_busy_ = false;
    return;
  }
  sim::Duration work = 0;
  for (const auto& c : rx_scratch_) {
    work += (c.is_recv ? cost::kDneRxStageNs : cost::kDneRxStageNs / 2) +
            config_.extra_per_msg_ns;
  }
  // rx_scratch_ stays untouched until this callback runs: kick_rx() bails
  // out while rx_busy_ and nothing else polls this CQ.
  sim::ProfileScope scope{"engine", "rx"};
  engine_core_.submit(work, [this] {
    for (const auto& c : rx_scratch_) {
      // One-sided completions first: handle_send_done would recycle their
      // (foreign) wr_ids as orphaned send buffers.
      if (!c.is_recv && onesided_ && onesided_(c)) continue;
      if (c.is_recv) {
        handle_recv(c);
      } else {
        handle_send_done(c);
      }
    }
    rx_iteration();
  });
}

void NetworkEngine::handle_recv(const rdma::Completion& c) {
  rbr_.on_consumed(c.tenant, c.buffer);
  auto& pool = pool_of(c.buffer);
  pool.transfer(c.buffer, mem::actor_rnic(node()), actor());

  auto bytes = pool.access(c.buffer, actor());
  MessageHeader h = read_header(bytes);
  if (h.seq != 0) {
    // Acknowledge every sequenced arrival — including duplicates, whose
    // earlier ACK may have been the thing the fabric lost.
    const NodeId sender = rnic_.qp(c.qp).remote_node();
    if (sender.valid()) {
      rnic_.network().send_datagram(
          node(), sender, rdma::Datagram{rdma::Datagram::Kind::kAck, h.seq});
      if (is_duplicate(sender, h.seq)) {
        ++counters_.dup_rx;
        pool.release(c.buffer, actor());
        return;
      }
    }
  }
  ++counters_.rx_msgs;
  if (trace_hop(h, "engine_rx", track_, sched_.now())) write_header(bytes, h);
  const FunctionId dst = h.dst();
  if (local_fns_.find(dst) == local_fns_.end()) {
    ++counters_.drops_no_route;
    if (auto* hub = obs::hub()) {
      hub->registry
          .counter("engine.drops_no_route",
                   "node=" + std::to_string(node().value()))
          .inc();
    }
    complete_with_error(c.buffer);
    return;
  }
  if (kind_ == EngineKind::kDneOnPath) {
    // On-path: the payload was staged in SoC memory and must be DMA'd down
    // to the host pool before the function can touch it.
    const std::uint32_t dma_span = begin_soc_dma_span(c.buffer);
    const sim::TimePoint t0 = sched_.now();
    sim::ProfileScope dma_scope{"dma", "rx", c.buffer.tenant.value()};
    dpu_->dma().transfer(c.byte_len,
                         [this, buffer = c.buffer, dst, dma_span, t0] {
                           end_soc_dma(dma_span, "rx", t0);
                           deliver_local(buffer, dst);
                         });
  } else {
    deliver_local(c.buffer, dst);
  }
}

void NetworkEngine::deliver_local(const mem::BufferDescriptor& d,
                                  FunctionId dst) {
  // Ownership moves to the destination function together with the
  // descriptor.
  pool_of(d).transfer(d, actor(), mem::actor_function(dst));
  if (comch_) {
    comch_->send_to_client(dst, d);
  } else {
    sockmap_->send(dst, d, &engine_core_);
  }
}

void NetworkEngine::handle_send_done(const rdma::Completion& c) {
  // Sender side: the WR left the NIC; reclaim the buffer token from the
  // RNIC. Unsequenced messages recycle immediately (pre-reliability
  // behaviour); sequenced ones are held until their ACK so a retransmit
  // can re-post the same buffer zero-copy.
  auto& pool = pool_of(c.buffer);
  pool.transfer(c.buffer, mem::actor_rnic(node()), actor());

  auto wit = wr_seq_.find(c.wr_id);
  if (wit == wr_seq_.end()) {
    pool.release(c.buffer, actor());
    ++counters_.recycled;
    return;
  }
  const std::uint64_t seq = wit->second;
  wr_seq_.erase(wit);
  auto it = unacked_.find(seq);
  if (it == unacked_.end()) {
    // Resolved while in flight with its state already retired.
    pool.release(c.buffer, actor());
    ++counters_.recycled;
    return;
  }
  UnackedMsg& m = it->second;
  m.in_flight = false;
  switch (m.outcome) {
    case UnackedMsg::Outcome::kAcked: finish_success(it); break;
    case UnackedMsg::Outcome::kFailed: finish_failure(it); break;
    case UnackedMsg::Outcome::kPending: break;  // timer/ack will resolve it
  }
}

// ---------------------------------------------------------------------------
// Reliability: ack / timeout / retransmit / error completion
// ---------------------------------------------------------------------------

bool NetworkEngine::is_duplicate(NodeId sender, std::uint64_t seq) {
  // Window far larger than max in-flight per peer (bounded by max_unacked
  // admission): a seq falling out of it can no longer be retransmitted by a
  // live sender, so anything below the window is treated as a replay.
  constexpr std::uint64_t kBits = DedupWindow::kBits;
  DedupWindow& w = dedup_[sender];
  if (seq > w.max_seq) {
    // Seqs entering the window reuse slots of ancient ones: clear the gap.
    if (seq - w.max_seq >= kBits) {
      w.bits.fill(0);
    } else {
      for (std::uint64_t s = w.max_seq + 1; s < seq; ++s) {
        w.bits[(s & (kBits - 1)) >> 6] &= ~(std::uint64_t{1} << (s & 63));
      }
    }
    w.max_seq = seq;
    w.bits[(seq & (kBits - 1)) >> 6] |= std::uint64_t{1} << (seq & 63);
    return false;
  }
  if (w.max_seq - seq >= kBits) return true;
  std::uint64_t& word = w.bits[(seq & (kBits - 1)) >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (seq & 63);
  if (word & mask) return true;
  word |= mask;
  return false;
}

void NetworkEngine::on_datagram(NodeId /*from*/, const rdma::Datagram& dg) {
  auto it = unacked_.find(dg.seq);
  if (it == unacked_.end()) return;  // late/duplicate ack for a retired seq
  UnackedMsg& m = it->second;
  if (dg.kind == rdma::Datagram::Kind::kAck) {
    ++counters_.acks_rx;
    if (m.timer != sim::kInvalidEvent) {
      sched_.cancel(m.timer);
      m.timer = sim::kInvalidEvent;
    }
    if (m.in_flight) {
      m.outcome = UnackedMsg::Outcome::kAcked;
    } else {
      finish_success(it);
    }
    return;
  }
  // NACK: the receiver shed this message (SRQ underrun beyond its RNR
  // bound). Retrying into the same overload would make it worse — fail
  // fast and let the submitter's error path decide.
  ++counters_.nacks_rx;
  ++counters_.requests_shed;
  if (auto* h = obs::hub()) {
    h->registry
        .counter("engine.requests_shed",
                 "node=" + std::to_string(node().value()))
        .inc();
  }
  if (m.timer != sim::kInvalidEvent) {
    sched_.cancel(m.timer);
    m.timer = sim::kInvalidEvent;
  }
  if (m.in_flight) {
    m.outcome = UnackedMsg::Outcome::kFailed;
  } else {
    finish_failure(it);
  }
}

void NetworkEngine::on_retransmit_timeout(std::uint64_t seq) {
  auto it = unacked_.find(seq);
  if (it == unacked_.end()) return;
  UnackedMsg& m = it->second;
  m.timer = sim::kInvalidEvent;
  if (m.in_flight) {
    // Send completion not harvested yet (WR parked behind a pool rebuild,
    // or the CQ is backed up): check again after another timeout.
    m.timer = sched_.schedule_after(config_.retransmit_timeout,
                                    [this, seq] { on_retransmit_timeout(seq); });
    return;
  }
  if (m.attempts >= config_.max_send_attempts) {
    finish_failure(it);
    return;
  }
  ++m.attempts;
  ++counters_.retransmits;
  if (auto* hub = obs::hub()) {
    hub->registry
        .counter("engine.retransmits",
                 "node=" + std::to_string(node().value()))
        .inc();
    if (m.retx_span == 0) {
      // One "retransmit" span per message covers the whole recovery tail
      // (first timeout until ACK/failure) so loss shows up as a transport
      // hop in critical-path attribution rather than as anonymous queueing.
      const MessageHeader h = read_header(pool_of(m.d).access(m.d, actor()));
      if (h.trace_id != 0) {
        m.retx_span = hub->tracer.begin_span(h.trace_id, h.root_span,
                                             "retransmit", track_,
                                             sched_.now());
      }
    }
  }
  pool_of(m.d).transfer(m.d, actor(), mem::actor_rnic(node()));
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = rdma::Opcode::kSend;
  wr.local = m.d;
  wr_seq_.emplace(wr.wr_id, seq);
  m.in_flight = true;
  m.timer = sched_.schedule_after(config_.retransmit_timeout,
                                  [this, seq] { on_retransmit_timeout(seq); });
  conn_mgr_.send(m.dest, m.d.tenant, wr);
}

void NetworkEngine::finish_success(UnackedIter it) {
  UnackedMsg& m = it->second;
  if (m.timer != sim::kInvalidEvent) sched_.cancel(m.timer);
  end_retransmit_span(m);
  release_tenant_credit(m.d.tenant);
  pool_of(m.d).release(m.d, actor());
  ++counters_.recycled;
  unacked_.erase(it);
}

void NetworkEngine::finish_failure(UnackedIter it) {
  UnackedMsg& m = it->second;
  if (m.timer != sim::kInvalidEvent) sched_.cancel(m.timer);
  end_retransmit_span(m);
  release_tenant_credit(m.d.tenant);
  ++counters_.send_failures;
  const mem::BufferDescriptor d = m.d;
  unacked_.erase(it);
  complete_with_error(d);
}

void NetworkEngine::release_tenant_credit(TenantId tenant) {
  auto it = tenant_unacked_.find(tenant);
  if (it != tenant_unacked_.end() && it->second > 0) --it->second;
}

void NetworkEngine::complete_with_error(const mem::BufferDescriptor& d) {
  auto& pool = pool_of(d);
  auto bytes = pool.access(d, actor());
  MessageHeader h = read_header(bytes);

  // Error messages that themselves fail are terminal: nothing upstream can
  // be told, and bouncing errors back and forth would melt a faulted
  // fabric further.
  if (h.is_error()) {
    ++counters_.errors_dropped;
    pool.release(d, actor());
    return;
  }

  MessageHeader e = h;
  e.src_fn = h.dst_fn;  // the unreachable / failed destination
  e.dst_fn = h.src_fn;  // back toward the submitter
  e.flags = static_cast<std::uint16_t>(h.flags | MessageHeader::kFlagError);
  e.payload_len = 0;
  e.seq = 0;
  write_header(bytes, e);
  const auto sized = pool.resize(d, actor(), message_bytes(0));
  ++counters_.error_completions;

  if (local_fns_.find(FunctionId{e.dst_fn}) != local_fns_.end()) {
    deliver_local(sized, FunctionId{e.dst_fn});
    return;
  }
  if (routes_.has_route(FunctionId{e.dst_fn})) {
    // The failed message came from a remote submitter (RX-side no-route):
    // ship the error completion back across the fabric like any message.
    // A tenant mid-teardown (remove_tenant drained its queue) no longer has
    // a scheduler slot — its error falls through to the terminal drop.
    if (config_.use_dwrr) {
      if (dwrr_.has_tenant(sized.tenant)) {
        dwrr_.enqueue(sized.tenant, sized);
        ledger_queue_enter(sized.tenant);
        kick_tx();
        return;
      }
    } else {
      fcfs_.enqueue(sized.tenant, sized);
      ledger_queue_enter(sized.tenant);
      kick_tx();
      return;
    }
  }
  ++counters_.errors_dropped;
  pool.release(sized, actor());
}

// ---------------------------------------------------------------------------
// Core thread: SRQ replenishment
// ---------------------------------------------------------------------------

void NetworkEngine::replenish_tick() {
  // Top each tenant's SRQ back up to its provisioned depth. (Posting only
  // "as many as consumed" — the literal shared-counter reading — has a
  // ratchet-down failure: a tenant whose deliveries dip to zero during a
  // burst would never be replenished again. Keeping `outstanding` pinned
  // at srq_fill is the fixpoint the paper's core thread maintains.)
  for (auto& [tenant, state] : tenants_) {
    (void)rbr_.take_consumed(tenant);  // reset the shared counter
    const std::uint64_t outstanding = rbr_.outstanding(tenant);
    const auto target = static_cast<std::uint64_t>(config_.srq_fill);
    if (outstanding < target) fill_srq(tenant, target - outstanding);
  }
  sched_.schedule_background_after(config_.replenish_period,
                                   [this] { replenish_tick(); });
}

void NetworkEngine::fill_srq(TenantId tenant, std::uint64_t n) {
  auto& pool = host_mem_.by_tenant(tenant).pool();
  std::uint64_t posted = 0;
  for (; posted < n; ++posted) {
    auto d = pool.allocate(mem::actor_rnic(node()));
    if (!d.has_value()) break;  // pool pressure: retry next tick
    rnic_.post_srq_recv(tenant, *d);
    rbr_.on_posted(tenant, *d);
  }
  counters_.replenished += posted;
  if (posted > 0) {
    sim::ProfileScope scope{"engine", "replenish", tenant.value()};
    engine_core_.submit(static_cast<sim::Duration>(posted) *
                        cost::kDneReplenishNs);
  }
}

// ---------------------------------------------------------------------------
// Observability (record-only: never schedules events or charges cores)
// ---------------------------------------------------------------------------

void NetworkEngine::end_retransmit_span(UnackedMsg& m) {
  if (m.retx_span == 0) return;
  if (obs::Hub* hub = obs::hub()) {
    hub->tracer.end_span(m.retx_span, sched_.now());
  }
  m.retx_span = 0;
}

void NetworkEngine::trace_stage(const mem::BufferDescriptor& d,
                                std::string_view stage) {
  if (obs::hub() == nullptr) return;
  auto bytes = pool_of(d).access(d, actor());
  MessageHeader h = read_header(bytes);
  if (trace_hop(h, stage, track_, sched_.now())) write_header(bytes, h);
}

std::uint32_t NetworkEngine::begin_soc_dma_span(const mem::BufferDescriptor& d) {
  obs::Hub* hub = obs::hub();
  if (hub == nullptr) return 0;
  const MessageHeader h = read_header(pool_of(d).access(d, actor()));
  if (h.trace_id == 0) return 0;
  // Not a baton hop: the staging copy overlaps the engine_tx/engine_rx
  // stages, so it hangs off the root as its own child slice.
  return hub->tracer.begin_span(h.trace_id, h.root_span, "soc_dma", track_,
                                sched_.now());
}

void NetworkEngine::end_soc_dma(std::uint32_t span, const char* dir,
                                sim::TimePoint begin) {
  obs::Hub* hub = obs::hub();
  if (hub == nullptr) return;
  if (span != 0) hub->tracer.end_span(span, sched_.now());
  // Always-on when a hub is attached (independent of trace sampling): this
  // histogram is what explains the off-path vs on-path gap in Fig. 11.
  hub->registry
      .histogram("dne.soc_dma_ns", std::string("dir=") + dir + ",node=" +
                                       std::to_string(node().value()))
      .record(sched_.now() - begin);
}

}  // namespace pd::core
