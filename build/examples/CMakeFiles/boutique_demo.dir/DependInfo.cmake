
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/boutique_demo.cpp" "examples/CMakeFiles/boutique_demo.dir/boutique_demo.cpp.o" "gcc" "examples/CMakeFiles/boutique_demo.dir/boutique_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ingress/CMakeFiles/pd_ingress.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/pd_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/pd_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/pd_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/pd_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/pd_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
