file(REMOVE_RECURSE
  "CMakeFiles/transport_conversion.dir/transport_conversion.cpp.o"
  "CMakeFiles/transport_conversion.dir/transport_conversion.cpp.o.d"
  "transport_conversion"
  "transport_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
