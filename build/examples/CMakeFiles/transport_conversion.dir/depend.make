# Empty dependencies file for transport_conversion.
# This may be replaced when dependencies are built.
