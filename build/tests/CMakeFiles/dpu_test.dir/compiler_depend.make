# Empty compiler generated dependencies file for dpu_test.
# This may be replaced when dependencies are built.
