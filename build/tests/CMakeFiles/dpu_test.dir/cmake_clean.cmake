file(REMOVE_RECURSE
  "CMakeFiles/dpu_test.dir/dpu/dpu_test.cpp.o"
  "CMakeFiles/dpu_test.dir/dpu/dpu_test.cpp.o.d"
  "dpu_test"
  "dpu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
