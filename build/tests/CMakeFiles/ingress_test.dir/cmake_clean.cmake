file(REMOVE_RECURSE
  "CMakeFiles/ingress_test.dir/ingress/ingress_test.cpp.o"
  "CMakeFiles/ingress_test.dir/ingress/ingress_test.cpp.o.d"
  "ingress_test"
  "ingress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
