# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[sim_test]=] "/root/repo/build/tests/sim_test")
set_tests_properties([=[sim_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[mem_test]=] "/root/repo/build/tests/mem_test")
set_tests_properties([=[mem_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[ipc_test]=] "/root/repo/build/tests/ipc_test")
set_tests_properties([=[ipc_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[fabric_test]=] "/root/repo/build/tests/fabric_test")
set_tests_properties([=[fabric_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;24;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[rdma_test]=] "/root/repo/build/tests/rdma_test")
set_tests_properties([=[rdma_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;27;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[core_test]=] "/root/repo/build/tests/core_test")
set_tests_properties([=[core_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;31;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[proto_test]=] "/root/repo/build/tests/proto_test")
set_tests_properties([=[proto_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;37;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[dpu_test]=] "/root/repo/build/tests/dpu_test")
set_tests_properties([=[dpu_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;41;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[ingress_test]=] "/root/repo/build/tests/ingress_test")
set_tests_properties([=[ingress_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;44;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[runtime_test]=] "/root/repo/build/tests/runtime_test")
set_tests_properties([=[runtime_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;47;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[workload_test]=] "/root/repo/build/tests/workload_test")
set_tests_properties([=[workload_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;50;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test([=[baselines_test]=] "/root/repo/build/tests/baselines_test")
set_tests_properties([=[baselines_test]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;53;pd_add_test;/root/repo/tests/CMakeLists.txt;0;")
