# Empty compiler generated dependencies file for debug_throughput.
# This may be replaced when dependencies are built.
