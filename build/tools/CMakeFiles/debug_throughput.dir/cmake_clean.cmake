file(REMOVE_RECURSE
  "CMakeFiles/debug_throughput.dir/debug_throughput.cpp.o"
  "CMakeFiles/debug_throughput.dir/debug_throughput.cpp.o.d"
  "debug_throughput"
  "debug_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
