# Empty compiler generated dependencies file for pd_proto.
# This may be replaced when dependencies are built.
