file(REMOVE_RECURSE
  "CMakeFiles/pd_proto.dir/http.cpp.o"
  "CMakeFiles/pd_proto.dir/http.cpp.o.d"
  "CMakeFiles/pd_proto.dir/tcp.cpp.o"
  "CMakeFiles/pd_proto.dir/tcp.cpp.o.d"
  "libpd_proto.a"
  "libpd_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
