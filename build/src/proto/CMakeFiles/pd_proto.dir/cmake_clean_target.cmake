file(REMOVE_RECURSE
  "libpd_proto.a"
)
