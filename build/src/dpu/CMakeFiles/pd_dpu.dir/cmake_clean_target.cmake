file(REMOVE_RECURSE
  "libpd_dpu.a"
)
