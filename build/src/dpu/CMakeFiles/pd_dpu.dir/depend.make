# Empty dependencies file for pd_dpu.
# This may be replaced when dependencies are built.
