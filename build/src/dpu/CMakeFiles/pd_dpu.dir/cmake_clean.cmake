file(REMOVE_RECURSE
  "CMakeFiles/pd_dpu.dir/comch.cpp.o"
  "CMakeFiles/pd_dpu.dir/comch.cpp.o.d"
  "CMakeFiles/pd_dpu.dir/dpu.cpp.o"
  "CMakeFiles/pd_dpu.dir/dpu.cpp.o.d"
  "libpd_dpu.a"
  "libpd_dpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
