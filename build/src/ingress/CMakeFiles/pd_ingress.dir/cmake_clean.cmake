file(REMOVE_RECURSE
  "CMakeFiles/pd_ingress.dir/palladium_ingress.cpp.o"
  "CMakeFiles/pd_ingress.dir/palladium_ingress.cpp.o.d"
  "CMakeFiles/pd_ingress.dir/proxy_ingress.cpp.o"
  "CMakeFiles/pd_ingress.dir/proxy_ingress.cpp.o.d"
  "libpd_ingress.a"
  "libpd_ingress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_ingress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
