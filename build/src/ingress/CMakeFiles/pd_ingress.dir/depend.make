# Empty dependencies file for pd_ingress.
# This may be replaced when dependencies are built.
