file(REMOVE_RECURSE
  "libpd_ingress.a"
)
