file(REMOVE_RECURSE
  "libpd_ipc.a"
)
