
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/skmsg.cpp" "src/ipc/CMakeFiles/pd_ipc.dir/skmsg.cpp.o" "gcc" "src/ipc/CMakeFiles/pd_ipc.dir/skmsg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pd_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
