file(REMOVE_RECURSE
  "CMakeFiles/pd_ipc.dir/skmsg.cpp.o"
  "CMakeFiles/pd_ipc.dir/skmsg.cpp.o.d"
  "libpd_ipc.a"
  "libpd_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
