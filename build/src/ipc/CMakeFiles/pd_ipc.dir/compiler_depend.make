# Empty compiler generated dependencies file for pd_ipc.
# This may be replaced when dependencies are built.
