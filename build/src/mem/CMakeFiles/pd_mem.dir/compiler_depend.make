# Empty compiler generated dependencies file for pd_mem.
# This may be replaced when dependencies are built.
