file(REMOVE_RECURSE
  "CMakeFiles/pd_mem.dir/buffer_pool.cpp.o"
  "CMakeFiles/pd_mem.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/pd_mem.dir/memory_domain.cpp.o"
  "CMakeFiles/pd_mem.dir/memory_domain.cpp.o.d"
  "libpd_mem.a"
  "libpd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
