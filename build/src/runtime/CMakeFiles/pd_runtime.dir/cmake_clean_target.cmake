file(REMOVE_RECURSE
  "libpd_runtime.a"
)
