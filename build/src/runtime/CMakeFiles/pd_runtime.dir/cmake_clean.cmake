file(REMOVE_RECURSE
  "CMakeFiles/pd_runtime.dir/boutique.cpp.o"
  "CMakeFiles/pd_runtime.dir/boutique.cpp.o.d"
  "CMakeFiles/pd_runtime.dir/cluster.cpp.o"
  "CMakeFiles/pd_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/pd_runtime.dir/function.cpp.o"
  "CMakeFiles/pd_runtime.dir/function.cpp.o.d"
  "libpd_runtime.a"
  "libpd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
