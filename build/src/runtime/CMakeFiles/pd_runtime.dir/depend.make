# Empty dependencies file for pd_runtime.
# This may be replaced when dependencies are built.
