# Empty compiler generated dependencies file for pd_workload.
# This may be replaced when dependencies are built.
