file(REMOVE_RECURSE
  "CMakeFiles/pd_workload.dir/driver.cpp.o"
  "CMakeFiles/pd_workload.dir/driver.cpp.o.d"
  "CMakeFiles/pd_workload.dir/http_client.cpp.o"
  "CMakeFiles/pd_workload.dir/http_client.cpp.o.d"
  "libpd_workload.a"
  "libpd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
