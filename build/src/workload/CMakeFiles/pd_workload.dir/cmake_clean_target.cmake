file(REMOVE_RECURSE
  "libpd_workload.a"
)
