file(REMOVE_RECURSE
  "CMakeFiles/pd_sim.dir/core.cpp.o"
  "CMakeFiles/pd_sim.dir/core.cpp.o.d"
  "CMakeFiles/pd_sim.dir/random.cpp.o"
  "CMakeFiles/pd_sim.dir/random.cpp.o.d"
  "CMakeFiles/pd_sim.dir/scheduler.cpp.o"
  "CMakeFiles/pd_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/pd_sim.dir/stats.cpp.o"
  "CMakeFiles/pd_sim.dir/stats.cpp.o.d"
  "libpd_sim.a"
  "libpd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
