file(REMOVE_RECURSE
  "CMakeFiles/pd_fabric.dir/fabric.cpp.o"
  "CMakeFiles/pd_fabric.dir/fabric.cpp.o.d"
  "libpd_fabric.a"
  "libpd_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
