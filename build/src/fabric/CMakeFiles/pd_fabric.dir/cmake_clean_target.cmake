file(REMOVE_RECURSE
  "libpd_fabric.a"
)
