# Empty dependencies file for pd_fabric.
# This may be replaced when dependencies are built.
