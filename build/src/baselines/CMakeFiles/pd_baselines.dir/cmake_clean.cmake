file(REMOVE_RECURSE
  "CMakeFiles/pd_baselines.dir/fuyao_engine.cpp.o"
  "CMakeFiles/pd_baselines.dir/fuyao_engine.cpp.o.d"
  "CMakeFiles/pd_baselines.dir/tcp_engine.cpp.o"
  "CMakeFiles/pd_baselines.dir/tcp_engine.cpp.o.d"
  "libpd_baselines.a"
  "libpd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
