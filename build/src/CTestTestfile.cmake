# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("mem")
subdirs("ipc")
subdirs("fabric")
subdirs("rdma")
subdirs("dpu")
subdirs("proto")
subdirs("core")
subdirs("ingress")
subdirs("runtime")
subdirs("baselines")
subdirs("workload")
