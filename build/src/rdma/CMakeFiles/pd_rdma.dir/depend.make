# Empty dependencies file for pd_rdma.
# This may be replaced when dependencies are built.
