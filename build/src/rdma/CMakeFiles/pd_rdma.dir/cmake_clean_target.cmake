file(REMOVE_RECURSE
  "libpd_rdma.a"
)
