file(REMOVE_RECURSE
  "CMakeFiles/pd_rdma.dir/connection.cpp.o"
  "CMakeFiles/pd_rdma.dir/connection.cpp.o.d"
  "CMakeFiles/pd_rdma.dir/rnic.cpp.o"
  "CMakeFiles/pd_rdma.dir/rnic.cpp.o.d"
  "libpd_rdma.a"
  "libpd_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
