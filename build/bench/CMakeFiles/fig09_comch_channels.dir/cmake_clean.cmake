file(REMOVE_RECURSE
  "CMakeFiles/fig09_comch_channels.dir/fig09_comch_channels.cpp.o"
  "CMakeFiles/fig09_comch_channels.dir/fig09_comch_channels.cpp.o.d"
  "fig09_comch_channels"
  "fig09_comch_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_comch_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
