# Empty dependencies file for fig09_comch_channels.
# This may be replaced when dependencies are built.
