# Empty dependencies file for fig13_ingress_comparison.
# This may be replaced when dependencies are built.
