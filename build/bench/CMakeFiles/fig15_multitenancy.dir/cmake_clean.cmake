file(REMOVE_RECURSE
  "CMakeFiles/fig15_multitenancy.dir/fig15_multitenancy.cpp.o"
  "CMakeFiles/fig15_multitenancy.dir/fig15_multitenancy.cpp.o.d"
  "fig15_multitenancy"
  "fig15_multitenancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_multitenancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
