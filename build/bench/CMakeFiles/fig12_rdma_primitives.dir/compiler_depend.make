# Empty compiler generated dependencies file for fig12_rdma_primitives.
# This may be replaced when dependencies are built.
