file(REMOVE_RECURSE
  "CMakeFiles/ablation_dne.dir/ablation_dne.cpp.o"
  "CMakeFiles/ablation_dne.dir/ablation_dne.cpp.o.d"
  "ablation_dne"
  "ablation_dne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
