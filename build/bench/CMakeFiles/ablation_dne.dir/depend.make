# Empty dependencies file for ablation_dne.
# This may be replaced when dependencies are built.
