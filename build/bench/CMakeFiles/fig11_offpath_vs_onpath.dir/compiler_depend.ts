# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_offpath_vs_onpath.
