# Empty dependencies file for fig11_offpath_vs_onpath.
# This may be replaced when dependencies are built.
