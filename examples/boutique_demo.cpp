// Online Boutique behind Palladium's HTTP/TCP-to-RDMA gateway: the
// paper's §4.3 scenario as an application. External HTTP clients hit the
// cluster ingress; payloads cross the fabric over two-sided RDMA; the ten
// microservices exchange buffers zero-copy.
//
//   $ ./examples/boutique_demo
//   $ ./examples/boutique_demo --trace      # also writes boutique_trace.json
//                                           # (open in https://ui.perfetto.dev)
//   $ ./examples/boutique_demo --chaos 42   # seeded fault injection: link
//                                           # outages, frame loss, QP/SRQ
//                                           # faults, node crashes
//   $ ./examples/boutique_demo --critpath   # p99 critical-path attribution
//                                           # -> boutique_critpath.json
//   $ ./examples/boutique_demo --flame      # exact busy-time flamegraph
//                                           # -> boutique_flame.folded
//   $ ./examples/boutique_demo --slo        # per-tenant SLO watchdog +
//                                           # burn-rate alerts
//   $ ./examples/boutique_demo --threads 4  # sharded parallel simulation
//                                           # (bit-identical for any count)
//   $ ./examples/boutique_demo --timeline   # flight-recorder gauge series
//                                           # -> boutique_timeseries.{json,csv}
//                                           # + ASCII dashboard
//   $ ./examples/boutique_demo --strict     # healthy-run invariants become
//                                           # hard failures (CI mode)
//   $ ./examples/boutique_demo --ledger     # per-tenant resource ledger +
//                                           # interference blame table
//                                           # -> boutique_ledger.{json,csv}
//   $ ./examples/boutique_demo --overload flash_crowd
//                                           # run an overload scenario twice
//                                           # (control loop off, then on) and
//                                           # print the before/after SLO
//                                           # tables; also: noisy_neighbor,
//                                           # diurnal, chaos_2x
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "control/scenario.hpp"
#include "fault/fault.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/critpath.hpp"
#include "obs/hub.hpp"
#include "runtime/boutique.hpp"
#include "runtime/function.hpp"
#include "runtime/metrics_export.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

using namespace pd;

int main(int argc, char** argv) {
  bool trace = false;
  bool chaos = false;
  bool slo = false;
  bool critpath = false;
  bool flame = false;
  bool timeline = false;
  bool strict = false;
  bool ledger = false;
  std::uint64_t chaos_seed = 0;
  std::size_t threads = 0;  // 0 = legacy single-scheduler simulation
  std::int64_t seconds = 5;
  std::string prefix = "boutique";
  std::string overload;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--overload") == 0 && i + 1 < argc) {
      overload = argv[++i];
    }
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    if (std::strcmp(argv[i], "--slo") == 0) slo = true;
    if (std::strcmp(argv[i], "--critpath") == 0) critpath = true;
    if (std::strcmp(argv[i], "--flame") == 0) flame = true;
    if (std::strcmp(argv[i], "--timeline") == 0) timeline = true;
    if (std::strcmp(argv[i], "--strict") == 0) strict = true;
    if (std::strcmp(argv[i], "--ledger") == 0) ledger = true;
    if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = true;
      chaos_seed = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::strtoll(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--prefix") == 0 && i + 1 < argc) {
      prefix = argv[++i];
    }
  }
  // --overload: delegate to the deterministic scenario runner — the same
  // cluster assembly with the ISSUE 7 control loop off, then on — and show
  // the before/after per-tenant SLO tables.
  if (!overload.empty()) {
    control::OverloadOptions oopts;
    oopts.scenario = control::parse_scenario(overload);
    oopts.threads = threads;
    oopts.seconds = seconds == 5 ? 3 : seconds;
    oopts.chaos_seed = chaos ? chaos_seed : 42;
    std::printf("=== overload scenario %s: before (control OFF) ===\n",
                overload.c_str());
    oopts.control = false;
    const auto before = control::run_overload(oopts);
    std::printf("%s\n", before.table().c_str());
    std::printf("=== overload scenario %s: after (control ON) ===\n",
                overload.c_str());
    oopts.control = true;
    const auto after = control::run_overload(oopts);
    std::printf("%s", after.table().c_str());
    const bool ok = before.zero_loss && after.zero_loss;
    if (!ok) std::fprintf(stderr, "FAILURE: requests were silently lost\n");
    return ok ? 0 : 1;
  }

  const bool tracing = trace || critpath;
  const bool observing = tracing || slo || flame || timeline || ledger;
  const sim::Duration horizon = seconds * 1'000'000'000;

  // With tracing on, sample every 500th request end-to-end (a 5 s run
  // serves ~100K requests; sampling keeps the trace Perfetto-sized) and
  // dump a full metrics snapshot alongside.
  obs::Hub hub;
  std::unique_ptr<obs::Session> session;
  std::unique_ptr<obs::ProfileSession> profiling;
  if (observing) {
    // In parallel mode the per-shard hubs do the recording (merged into
    // `hub` after the run); the globally installed hub must not sample.
    hub.tracer.set_sample_every(threads == 0 && tracing ? 500 : 0);
    session = std::make_unique<obs::Session>(hub);
  }
  if (flame) profiling = std::make_unique<obs::ProfileSession>(hub.profiler);

  // Legacy mode runs everything on one scheduler; --threads N shards the
  // cluster (edge + one shard per worker) across N OS threads with
  // bit-identical simulated results for every N.
  sim::Scheduler serial_sched;
  std::unique_ptr<sim::ParallelSim> psim;
  if (threads > 0) psim = std::make_unique<sim::ParallelSim>(3, threads);

  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 16;
  auto cluster = psim != nullptr
                     ? std::make_unique<runtime::Cluster>(*psim, cfg)
                     : std::make_unique<runtime::Cluster>(serial_sched, cfg);
  sim::Scheduler& sched = cluster->scheduler();
  cluster->add_worker(NodeId{1});
  cluster->add_worker(NodeId{2});
  if (psim != nullptr) {
    if (tracing) cluster->enable_shard_tracing(500);
    if (flame) cluster->enable_shard_profiling();
  }

  // Hot functions (frontend/checkout/recommendation) on node 1, the other
  // seven on node 2 — the paper's placement.
  runtime::OnlineBoutique::deploy(*cluster, NodeId{1}, NodeId{2});

  // HTTP/TCP terminates at the cluster edge; only payloads enter the
  // RDMA fabric (early transport conversion, §3.6).
  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  ingress::PalladiumIngress gateway(*cluster, icfg);
  gateway.expose_chain("/home", runtime::OnlineBoutique::kHomeQuery);
  gateway.expose_chain("/cart", runtime::OnlineBoutique::kViewCart);
  gateway.expose_chain("/product", runtime::OnlineBoutique::kProductQuery);
  gateway.expose_chain("/checkout", runtime::OnlineBoutique::kCheckoutChain);
  gateway.finish_setup();
  cluster->finish_setup();
  std::unique_ptr<obs::LedgerSession> ledger_session;
  if (ledger) {
    cluster->enable_ledger();
    gateway.attach_pool_clock();
    if (psim == nullptr) {
      ledger_session = std::make_unique<obs::LedgerSession>(hub.ledger);
    }
  }
  if (timeline) {
    // 1 ms sampling over the whole topology: engines, RNICs, buffer pools,
    // DWRR state, QP health, cores, plus the gateway's edge-side gauges.
    cluster->start_flight_recorder({});
    gateway.start_flight_probes();
  }

  if (slo) {
    // Healthy-run p99s sit near 1.2 ms (interactive pages) / 1.5 ms
    // (checkout); the targets leave ~2x headroom so only real trouble
    // (chaos, overload) burns budget.
    cluster->add_slo({.name = "boutique-home",
                      .tenant = runtime::OnlineBoutique::kTenant,
                      .chain = runtime::OnlineBoutique::kHomeQuery,
                      .target_ns = 2'500'000});
    cluster->add_slo({.name = "boutique-checkout",
                      .tenant = runtime::OnlineBoutique::kTenant,
                      .chain = runtime::OnlineBoutique::kCheckoutChain,
                      .target_ns = 3'500'000});
    cluster->add_slo({.name = "boutique-all",
                      .tenant = runtime::OnlineBoutique::kTenant,
                      .target_ns = 3'500'000,
                      .budget = 0.05});
  }

  // Three client populations hammering different pages.
  struct Page {
    const char* target;
    int clients;
  };
  const Page pages[] = {{"/home", 16}, {"/product", 12}, {"/checkout", 4}};

  // Seeded chaos: fault episodes spread across the middle of the run,
  // leaving a clean first half-second and enough tail to watch recovery.
  std::unique_ptr<fault::ChaosController> chaos_ctl;
  if (chaos) {
    fault::FaultPlanConfig fcfg;
    fcfg.start = sched.now() + 500'000'000;
    fcfg.horizon = horizon - 500'000'000;
    fcfg.episodes = 40;
    fcfg.min_gap = 20'000'000;
    fcfg.max_gap = 120'000'000;
    const fault::FaultPlan plan =
        fault::FaultPlan::generate(chaos_seed, {NodeId{1}, NodeId{2}}, fcfg);
    std::printf("%s", plan.describe().c_str());
    chaos_ctl = std::make_unique<fault::ChaosController>(*cluster, plan);
    chaos_ctl->arm();
  }

  std::vector<std::unique_ptr<workload::HttpLoadGen>> gens;
  for (const auto& page : pages) {
    workload::HttpLoadGen::Config wcfg;
    wcfg.target = page.target;
    wcfg.body = R"({"session":"u-1234","currency":"EUR"})";
    wcfg.client_cores = 8;
    gens.push_back(std::make_unique<workload::HttpLoadGen>(sched, gateway, wcfg));
    gens.back()->add_clients(page.clients);
  }

  if (psim != nullptr) {
    psim->run_until(horizon);
    for (auto& g : gens) g->stop();
    psim->run();
  } else {
    sched.run_until(horizon);
    for (auto& g : gens) g->stop();
    sched.run();
  }
  if (ledger) {
    cluster->collect_pool_slot_ns();
    if (obs::Hub* eh = cluster->edge_hub()) {
      gateway.collect_pool_slot_ns(eh->ledger);
    }
  }
  if (psim != nullptr) {
    cluster->merge_observability(hub);
  } else if (observing) {
    hub.slo.finish(sched.now());
  }

  const double secs = static_cast<double>(seconds);
  std::printf("Online Boutique over Palladium (DNE), %lld s, 32 HTTP clients",
              static_cast<long long>(seconds));
  if (threads > 0) std::printf(", %zu sim threads", threads);
  std::printf(":\n");
  for (std::size_t i = 0; i < gens.size(); ++i) {
    std::printf("  %-10s %6.0f RPS  mean %6.2f ms  p99 %6.2f ms\n",
                pages[i].target,
                static_cast<double>(gens[i]->completed()) / secs,
                gens[i]->latencies().mean_ns() / 1e6,
                sim::to_ms(gens[i]->latencies().quantile(0.99)));
  }

  std::printf("\nper-function invocations:\n");
  const char* names[] = {"frontend",  "productcatalog", "currency",
                         "cart",      "recommendation", "shipping",
                         "checkout",  "payment",        "email",
                         "ad"};
  for (std::uint32_t f = 1; f <= 10; ++f) {
    auto& inst = cluster->instance(FunctionId{f});
    std::printf("  %-16s %8llu calls on node %u\n", names[f - 1],
                static_cast<unsigned long long>(inst.invocations()),
                cluster->placement_of(FunctionId{f}).value());
  }

  for (NodeId n : {NodeId{1}, NodeId{2}}) {
    auto* dne = cluster->worker(n).palladium_engine();
    std::printf("node-%u DNE: tx=%llu rx=%llu replenished=%llu\n", n.value(),
                static_cast<unsigned long long>(dne->counters().tx_msgs),
                static_cast<unsigned long long>(dne->counters().rx_msgs),
                static_cast<unsigned long long>(dne->counters().replenished));
  }

  if (chaos) {
    std::uint64_t sent = 0, completed = 0, errors = 0;
    for (const auto& g : gens) {
      sent += g->sent();
      completed += g->completed();
      errors += g->errors();
    }
    std::uint64_t retransmits = 0, reestablishments = 0;
    for (NodeId n : {NodeId{1}, NodeId{2}}) {
      auto* dne = cluster->worker(n).palladium_engine();
      retransmits += dne->counters().retransmits;
      reestablishments += dne->connections().stats().reestablishments;
    }
    std::printf(
        "\nchaos seed %llu: %llu faults injected, %llu frames dropped\n"
        "  recovery: %llu retransmits, %llu QP pool rebuilds\n"
        "  accounting: sent=%llu completed=%llu errors=%llu -> %s\n",
        static_cast<unsigned long long>(chaos_seed),
        static_cast<unsigned long long>(chaos_ctl->injected()),
        static_cast<unsigned long long>(
            cluster->rdma_net()->fabric().frames_dropped()),
        static_cast<unsigned long long>(retransmits),
        static_cast<unsigned long long>(reestablishments),
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(errors),
        sent == completed + errors ? "no request silently lost"
                                   : "LOST REQUESTS");
  }

  // Every sampled request that completed must have closed its whole span
  // tree; leftovers on a healthy run mean an instrumentation leak (on a
  // chaos run, requests genuinely in flight at the horizon are expected).
  // Under --strict these healthy-run invariants are hard failures so CI
  // can consume them.
  int exit_code = 0;
  if (tracing && !chaos && hub.tracer.open_spans() > 0) {
    std::fprintf(stderr,
                 "%s: %zu spans still open after a healthy run — "
                 "instrumentation is leaking spans\n",
                 strict ? "STRICT FAILURE" : "WARNING",
                 hub.tracer.open_spans());
    if (strict) exit_code = 1;
  }
  if (strict && !chaos) {
    std::uint64_t no_route = 0;
    for (NodeId n : {NodeId{1}, NodeId{2}}) {
      no_route += cluster->worker(n).palladium_engine()->counters().drops_no_route;
    }
    if (no_route != 0) {
      std::fprintf(stderr,
                   "STRICT FAILURE: %llu messages dropped with no route on a "
                   "healthy run\n",
                   static_cast<unsigned long long>(no_route));
      exit_code = 1;
    }
  }

  if (slo) {
    std::printf("\nSLO watchdog (%llu requests, %llu violations, "
                "%zu alerts):\n%s",
                static_cast<unsigned long long>(hub.slo.total_requests()),
                static_cast<unsigned long long>(hub.slo.total_violations()),
                hub.slo.alerts().size(), hub.slo.table().c_str());
  }

  if (critpath) {
    const auto report =
        obs::analyze(obs::to_read_spans(hub.tracer.spans()), 0.99);
    std::printf("\n%s", obs::report_table(report).c_str());
    obs::write_report_json(report, prefix + "_critpath.json");
    std::printf("attribution report -> %s_critpath.json\n", prefix.c_str());
  }

  if (flame) {
    hub.profiler.write_collapsed(prefix + "_flame.folded");
    std::printf(
        "\nexact profile: %llu busy-ns folded -> %s_flame.folded "
        "(feed to flamegraph.pl / speedscope)\n",
        static_cast<unsigned long long>(hub.profiler.total_ns()),
        prefix.c_str());
  }

  if (trace) {
    hub.tracer.write_chrome_json(prefix + "_trace.json");
    std::printf(
        "\n%zu spans from sampled requests -> %s_trace.json "
        "(open in https://ui.perfetto.dev or chrome://tracing)\n",
        hub.tracer.spans().size(), prefix.c_str());
  }
  if (timeline) {
    std::printf("\n%s", hub.timeseries.dashboard().c_str());
    hub.timeseries.write_json(prefix + "_timeseries.json");
    hub.timeseries.write_csv(prefix + "_timeseries.csv");
    std::printf(
        "flight recorder: %zu series, %llu samples -> %s_timeseries.{json,csv}\n",
        hub.timeseries.series_count(),
        static_cast<unsigned long long>(hub.timeseries.samples_taken()),
        prefix.c_str());
  }
  if (ledger) {
    const obs::Ledger::Totals t = hub.ledger.totals();
    std::printf("\nresource ledger: busy=%llu ns wait=%llu ns bytes=%llu\n%s",
                static_cast<unsigned long long>(t.busy_ns),
                static_cast<unsigned long long>(t.wait_ns),
                static_cast<unsigned long long>(t.bytes),
                hub.ledger.table().c_str());
    std::FILE* jf = std::fopen((prefix + "_ledger.json").c_str(), "w");
    if (jf != nullptr) {
      const std::string j = hub.ledger.to_json();
      std::fwrite(j.data(), 1, j.size(), jf);
      std::fclose(jf);
    }
    std::FILE* cf = std::fopen((prefix + "_ledger.csv").c_str(), "w");
    if (cf != nullptr) {
      const std::string c = hub.ledger.to_csv();
      std::fwrite(c.data(), 1, c.size(), cf);
      std::fclose(cf);
    }
    std::printf("resource ledger -> %s_ledger.{json,csv}\n", prefix.c_str());
    hub.ledger.export_metrics(hub.registry);
  }
  if (observing) {
    runtime::export_metrics(*cluster, hub.registry);
    hub.registry.write_json(prefix + "_metrics.json");
    std::printf("metrics snapshot -> %s_metrics.json\n", prefix.c_str());
  }
  return exit_code;
}
