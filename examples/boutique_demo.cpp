// Online Boutique behind Palladium's HTTP/TCP-to-RDMA gateway: the
// paper's §4.3 scenario as an application. External HTTP clients hit the
// cluster ingress; payloads cross the fabric over two-sided RDMA; the ten
// microservices exchange buffers zero-copy.
//
//   $ ./examples/boutique_demo
//   $ ./examples/boutique_demo --trace      # also writes boutique_trace.json
//                                           # (open in https://ui.perfetto.dev)
//   $ ./examples/boutique_demo --chaos 42   # seeded fault injection: link
//                                           # outages, frame loss, QP/SRQ
//                                           # faults, node crashes
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/fault.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/hub.hpp"
#include "runtime/boutique.hpp"
#include "runtime/function.hpp"
#include "runtime/metrics_export.hpp"
#include "workload/http_client.hpp"

using namespace pd;

int main(int argc, char** argv) {
  bool trace = false;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = true;
      chaos_seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  // With --trace, sample every 500th request end-to-end (a 5 s run serves
  // ~100K requests; sampling keeps the trace file Perfetto-sized) and dump
  // a full metrics snapshot alongside.
  obs::Hub hub;
  std::unique_ptr<obs::Session> session;
  if (trace) {
    hub.tracer.set_sample_every(500);
    session = std::make_unique<obs::Session>(hub);
  }

  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 16;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(NodeId{1});
  cluster.add_worker(NodeId{2});

  // Hot functions (frontend/checkout/recommendation) on node 1, the other
  // seven on node 2 — the paper's placement.
  runtime::OnlineBoutique::deploy(cluster, NodeId{1}, NodeId{2});

  // HTTP/TCP terminates at the cluster edge; only payloads enter the
  // RDMA fabric (early transport conversion, §3.6).
  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  ingress::PalladiumIngress gateway(cluster, icfg);
  gateway.expose_chain("/home", runtime::OnlineBoutique::kHomeQuery);
  gateway.expose_chain("/cart", runtime::OnlineBoutique::kViewCart);
  gateway.expose_chain("/product", runtime::OnlineBoutique::kProductQuery);
  gateway.expose_chain("/checkout", runtime::OnlineBoutique::kCheckoutChain);
  gateway.finish_setup();
  cluster.finish_setup();

  // Three client populations hammering different pages.
  struct Page {
    const char* target;
    int clients;
  };
  const Page pages[] = {{"/home", 16}, {"/product", 12}, {"/checkout", 4}};

  // Seeded chaos: fault episodes spread across the middle 4 s of the run,
  // leaving a clean first half-second and enough tail to watch recovery.
  std::unique_ptr<fault::ChaosController> chaos_ctl;
  if (chaos) {
    fault::FaultPlanConfig fcfg;
    fcfg.start = sched.now() + 500'000'000;
    fcfg.horizon = 4'500'000'000;
    fcfg.episodes = 40;
    fcfg.min_gap = 20'000'000;
    fcfg.max_gap = 120'000'000;
    const fault::FaultPlan plan =
        fault::FaultPlan::generate(chaos_seed, {NodeId{1}, NodeId{2}}, fcfg);
    std::printf("%s", plan.describe().c_str());
    chaos_ctl = std::make_unique<fault::ChaosController>(cluster, plan);
    chaos_ctl->arm();
  }

  std::vector<std::unique_ptr<workload::HttpLoadGen>> gens;
  for (const auto& page : pages) {
    workload::HttpLoadGen::Config wcfg;
    wcfg.target = page.target;
    wcfg.body = R"({"session":"u-1234","currency":"EUR"})";
    wcfg.client_cores = 8;
    gens.push_back(std::make_unique<workload::HttpLoadGen>(sched, gateway, wcfg));
    gens.back()->add_clients(page.clients);
  }

  sched.run_until(5'000'000'000);  // 5 s
  for (auto& g : gens) g->stop();
  sched.run();

  std::printf("Online Boutique over Palladium (DNE), 5 s, 32 HTTP clients:\n");
  for (std::size_t i = 0; i < gens.size(); ++i) {
    std::printf("  %-10s %6.0f RPS  mean %6.2f ms  p99 %6.2f ms\n",
                pages[i].target, static_cast<double>(gens[i]->completed()) / 5.0,
                gens[i]->latencies().mean_ns() / 1e6,
                sim::to_ms(gens[i]->latencies().quantile(0.99)));
  }

  std::printf("\nper-function invocations:\n");
  const char* names[] = {"frontend",  "productcatalog", "currency",
                         "cart",      "recommendation", "shipping",
                         "checkout",  "payment",        "email",
                         "ad"};
  for (std::uint32_t f = 1; f <= 10; ++f) {
    auto& inst = cluster.instance(FunctionId{f});
    std::printf("  %-16s %8llu calls on node %u\n", names[f - 1],
                static_cast<unsigned long long>(inst.invocations()),
                cluster.placement_of(FunctionId{f}).value());
  }

  for (NodeId n : {NodeId{1}, NodeId{2}}) {
    auto* dne = cluster.worker(n).palladium_engine();
    std::printf("node-%u DNE: tx=%llu rx=%llu replenished=%llu\n", n.value(),
                static_cast<unsigned long long>(dne->counters().tx_msgs),
                static_cast<unsigned long long>(dne->counters().rx_msgs),
                static_cast<unsigned long long>(dne->counters().replenished));
  }

  if (chaos) {
    std::uint64_t sent = 0, completed = 0, errors = 0;
    for (const auto& g : gens) {
      sent += g->sent();
      completed += g->completed();
      errors += g->errors();
    }
    std::uint64_t retransmits = 0, reestablishments = 0;
    for (NodeId n : {NodeId{1}, NodeId{2}}) {
      auto* dne = cluster.worker(n).palladium_engine();
      retransmits += dne->counters().retransmits;
      reestablishments += dne->connections().stats().reestablishments;
    }
    std::printf(
        "\nchaos seed %llu: %llu faults injected, %llu frames dropped\n"
        "  recovery: %llu retransmits, %llu QP pool rebuilds\n"
        "  accounting: sent=%llu completed=%llu errors=%llu -> %s\n",
        static_cast<unsigned long long>(chaos_seed),
        static_cast<unsigned long long>(chaos_ctl->injected()),
        static_cast<unsigned long long>(
            cluster.rdma_net()->fabric().frames_dropped()),
        static_cast<unsigned long long>(retransmits),
        static_cast<unsigned long long>(reestablishments),
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(errors),
        sent == completed + errors ? "no request silently lost"
                                   : "LOST REQUESTS");
  }

  if (trace) {
    hub.tracer.write_chrome_json("boutique_trace.json");
    runtime::export_metrics(cluster, hub.registry);
    hub.registry.write_json("boutique_metrics.json");
    std::printf(
        "\n%zu spans from %zu sampled requests -> boutique_trace.json "
        "(open in https://ui.perfetto.dev or chrome://tracing)\n"
        "metrics snapshot -> boutique_metrics.json\n",
        hub.tracer.spans().size(),
        hub.tracer.spans().size() == 0
            ? static_cast<std::size_t>(0)
            : static_cast<std::size_t>(hub.tracer.spans().back().trace_id));
  }
  return 0;
}
