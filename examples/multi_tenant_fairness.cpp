// Multi-tenant RDMA isolation in action: two production tenants and one
// noisy neighbour share a node pair's DNE. With DWRR (weights 4:2:1) the
// noisy tenant cannot starve the others; flip kUseDwrr to false to watch
// FCFS hand it the fabric.
//
//   $ ./examples/multi_tenant_fairness
#include <cstdio>

#include "runtime/cluster.hpp"
#include "runtime/function.hpp"
#include "workload/driver.hpp"

using namespace pd;

constexpr bool kUseDwrr = true;

int main() {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.engine.use_dwrr = kUseDwrr;
  cfg.engine.extra_per_msg_ns = 500;  // pin DNE capacity to make contention visible
  cfg.pool_buffers = 4096;
  cfg.buffer_bytes = 4096;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(NodeId{1});
  cluster.add_worker(NodeId{2});

  struct TenantSpec {
    const char* name;
    TenantId id;
    std::uint32_t weight;
    double offered_rps;
  };
  const TenantSpec tenants[] = {
      {"checkout-svc (w=4)", TenantId{1}, 4, 120'000},
      {"search-svc   (w=2)", TenantId{2}, 2, 120'000},
      {"batch-crawler(w=1)", TenantId{3}, 1, 300'000},  // noisy neighbour
  };

  std::vector<std::unique_ptr<workload::BurstyLoad>> loads;
  std::uint32_t next_fn = 1;
  for (const auto& t : tenants) {
    cluster.add_tenant(t.id, t.weight);
    const FunctionId fn{next_fn++};
    cluster.deploy(runtime::FunctionSpec{fn, "svc", t.id}, NodeId{2});
    cluster.add_chain(runtime::Chain{t.id.value(), t.name, t.id, 64,
                                     {{fn, 1'000, 64}}});
    workload::BurstyLoad::Schedule sched_spec;
    sched_spec.start = 0;
    sched_spec.stop = 10'000'000'000;
    sched_spec.rate_rps = t.offered_rps;
    loads.push_back(std::make_unique<workload::BurstyLoad>(
        cluster, FunctionId{100 + t.id.value()}, NodeId{1}, t.id.value(),
        sched_spec, /*seed=*/7 * t.id.value()));
  }
  cluster.finish_setup();
  for (auto& l : loads) l->start();
  sched.run_until(11'000'000'000);

  std::printf("DNE scheduling: %s — 10 s of three-way contention\n",
              kUseDwrr ? "DWRR (weights 4:2:1)" : "FCFS (no isolation)");
  std::printf("%-22s %12s %12s %10s\n", "tenant", "offered RPS", "achieved",
              "dropped");
  double achieved[3];
  for (std::size_t i = 0; i < loads.size(); ++i) {
    achieved[i] = static_cast<double>(loads[i]->completed()) / 10.0;
    std::printf("%-22s %12.0f %12.0f %10llu\n", tenants[i].name,
                tenants[i].offered_rps, achieved[i],
                static_cast<unsigned long long>(loads[i]->dropped()));
  }
  std::printf("\nachieved ratio (expect ~4 : 2 : 1 under DWRR when all are "
              "backlogged):\n  %.2f : %.2f : 1\n",
              achieved[0] / achieved[2], achieved[1] / achieved[2]);
  return 0;
}
