// Quickstart: build a two-node Palladium cluster, deploy a two-function
// chain, push requests through the DPU-offloaded data plane, and read the
// results. This is the smallest end-to-end use of the public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "runtime/boutique.hpp"
#include "runtime/cluster.hpp"
#include "runtime/function.hpp"
#include "workload/driver.hpp"

using namespace pd;

int main() {
  // 1. A deterministic simulated cluster: every node, NIC and DPU share
  //    one virtual clock.
  sim::Scheduler sched;

  // 2. Two worker nodes running Palladium's DPU network engine (DNE).
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 8;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(NodeId{1});
  cluster.add_worker(NodeId{2});

  // 3. One tenant (= one function chain, per §3.1) with its unified memory
  //    pool on every node, then two functions placed across the nodes.
  const TenantId tenant{1};
  cluster.add_tenant(tenant, /*weight=*/1);
  const FunctionId resize{1}, store{2};
  cluster.deploy(runtime::FunctionSpec{resize, "thumbnail-resize", tenant},
                 NodeId{1});
  cluster.deploy(runtime::FunctionSpec{store, "blob-store", tenant}, NodeId{2});

  // 4. The chain: entry -> resize (80 us compute, emits 8 KiB) ->
  //    store (40 us, acks 128 B) -> entry. The resize->store hop crosses
  //    nodes: descriptor via Comch to the DNE, payload via two-sided RDMA.
  cluster.add_chain(runtime::Chain{
      /*id=*/1, "thumbnail", tenant, /*request_payload=*/4096,
      {{resize, 80'000, 8192}, {store, 40'000, 128}}});

  // 5. A closed-loop driver (8 clients, wrk-style) on node 1.
  workload::ChainDriver driver(cluster, FunctionId{100}, NodeId{1}, 1);
  cluster.finish_setup();  // RC connection pools, routing sync

  driver.start(8);
  sched.run_until(2'000'000'000);  // 2 s of virtual time
  driver.stop();
  sched.run();

  // 6. Results.
  std::printf("thumbnail chain, 8 closed-loop clients, 2 s:\n");
  std::printf("  completed:   %llu requests (%.0f RPS)\n",
              static_cast<unsigned long long>(driver.completed()),
              static_cast<double>(driver.completed()) / 2.0);
  std::printf("  latency:     mean %.1f us, p50 %.1f us, p99 %.1f us\n",
              driver.latencies().mean_ns() / 1e3,
              sim::to_us(driver.latencies().quantile(0.5)),
              sim::to_us(driver.latencies().quantile(0.99)));

  auto* dne = cluster.worker(NodeId{1}).palladium_engine();
  std::printf("  node-1 DNE:  %llu tx, %llu rx, %llu buffers recycled\n",
              static_cast<unsigned long long>(dne->counters().tx_msgs),
              static_cast<unsigned long long>(dne->counters().rx_msgs),
              static_cast<unsigned long long>(dne->counters().recycled));
  std::printf("  zero copies: payloads moved only by (simulated) RNIC DMA\n");
  return 0;
}
