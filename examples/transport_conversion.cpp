// Early vs deferred transport conversion, side by side (§3.6 / Fig. 4):
// the same HTTP workload served through PALLADIUM's HTTP/TCP-to-RDMA
// gateway and through a classic F-stack reverse proxy that keeps TCP all
// the way to the worker node.
//
//   $ ./examples/transport_conversion
#include <cstdio>

#include "ingress/palladium_ingress.hpp"
#include "ingress/proxy_ingress.hpp"
#include "runtime/function.hpp"
#include "workload/http_client.hpp"

using namespace pd;

namespace {

struct Outcome {
  double rps;
  double mean_ms;
};

Outcome serve(bool early_conversion) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = early_conversion ? runtime::SystemKind::kPalladiumDne
                                : runtime::SystemKind::kSpright;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(NodeId{1});
  cluster.add_worker(NodeId{2});
  cluster.add_tenant(TenantId{1}, 1);
  cluster.deploy(runtime::FunctionSpec{FunctionId{1}, "api", TenantId{1}},
                 NodeId{1});
  cluster.add_chain(runtime::Chain{1, "api", TenantId{1}, 512,
                                   {{FunctionId{1}, 20'000, 2048}}});

  std::unique_ptr<ingress::IngressFrontend> ing;
  if (early_conversion) {
    auto p = std::make_unique<ingress::PalladiumIngress>(
        cluster, ingress::PalladiumIngress::Config{});
    p->expose_chain("/api", 1);
    p->finish_setup();
    ing = std::move(p);
  } else {
    ingress::ProxyIngress::Config icfg;
    icfg.stack = proto::StackKind::kFstack;  // the stronger baseline
    auto p = std::make_unique<ingress::ProxyIngress>(cluster, icfg);
    p->expose_chain("/api", 1);
    p->finish_setup();
    ing = std::move(p);
  }
  cluster.finish_setup();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/api";
  wcfg.body = std::string(400, 'j');
  wcfg.client_cores = 16;
  workload::HttpLoadGen wrk(sched, *ing, wcfg);
  wrk.add_clients(32);
  sched.run_until(4'000'000'000);
  wrk.stop();
  sched.run();
  return {static_cast<double>(wrk.completed()) / 4.0,
          wrk.latencies().mean_ns() / 1e6};
}

}  // namespace

int main() {
  const Outcome early = serve(true);
  const Outcome deferred = serve(false);

  std::printf("same API, same workload (32 clients, 4 s), two gateways:\n\n");
  std::printf("  %-38s %10s %12s\n", "design", "RPS", "mean ms");
  std::printf("  %-38s %10.0f %12.2f\n",
              "early conversion (PALLADIUM, HTTP->RDMA)", early.rps,
              early.mean_ms);
  std::printf("  %-38s %10.0f %12.2f\n",
              "deferred conversion (F-stack proxy)", deferred.rps,
              deferred.mean_ms);
  std::printf("\nearly conversion advantage: x%.2f RPS, x%.2f latency\n",
              early.rps / deferred.rps, deferred.mean_ms / early.mean_ms);
  std::printf("the proxy terminates TCP twice and parses HTTP three times "
              "per request;\nPALLADIUM does both exactly once, at the edge "
              "(§3.6).\n");
  return 0;
}
